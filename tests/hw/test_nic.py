"""Unit tests for the NIC: tx pump, rx buffering, coalescing, offload."""

import pytest

from repro.config import LinkParams, NicParams, PciParams
from repro.hw import Channel, PciBus
from repro.hw.nic import EtherType, Frame, MacAddress, Nic, TxDescriptor
from repro.hw.nic.interrupts import InterruptCoalescer
from repro.sim import Environment

LINK = LinkParams()


def make_nic(env, params=None, rx_deliver="irq-pull"):
    pci = PciBus(env, PciParams())
    nic = Nic(env, params or NicParams(), LINK, pci, MacAddress(1), rx_deliver=rx_deliver)
    sent = []
    chan = Channel(env, LINK, "out")
    chan.connect(lambda f: sent.append(f))
    nic.attach_tx(chan)
    return nic, sent


def desc(nbytes, **kw):
    return TxDescriptor(dst=MacAddress(2), ethertype=EtherType.CLIC, payload_bytes=nbytes, **kw)


def test_tx_sends_frame_with_payload():
    env = Environment()
    nic, sent = make_nic(env)
    assert nic.try_post_tx(desc(1000, payload="hello"))
    env.run()
    assert len(sent) == 1
    assert sent[0].payload_bytes == 1000
    assert sent[0].payload == "hello"
    assert sent[0].src == MacAddress(1)
    assert nic.counters.get("tx_frames") == 1


def test_tx_on_wire_event_fires():
    env = Environment()
    nic, sent = make_nic(env)
    ev = env.event()
    nic.try_post_tx(desc(1000, on_wire=ev))
    t = env.run(ev)
    assert t > 0
    env.run()  # let propagation deliver the frame
    assert sent


def test_tx_ring_full_rejects():
    env = Environment()
    params = NicParams(tx_ring_slots=2)
    nic, _ = make_nic(env, params)
    assert nic.try_post_tx(desc(100))
    assert nic.try_post_tx(desc(100))
    # The pump hasn't run yet (no env.run), so the third must bounce.
    assert not nic.try_post_tx(desc(100))
    assert nic.counters.get("tx_ring_full") == 1


def test_tx_oversized_descriptor_without_offload_rejected():
    env = Environment()
    nic, _ = make_nic(env, NicParams(mtu=1500, supports_fragmentation=False))
    with pytest.raises(ValueError):
        nic.try_post_tx(desc(3000))


def test_tx_fragmentation_offload_splits_to_mtu():
    env = Environment()
    params = NicParams(mtu=1500, supports_fragmentation=True)
    nic, sent = make_nic(env, params)
    nic.try_post_tx(desc(3200))
    env.run()
    assert [f.payload_bytes for f in sent] == [1500, 1500, 200]
    assert nic.counters.get("tx_offload_fragmented") == 1


def test_jumbo_mtu_requires_support():
    env = Environment()
    params = NicParams(mtu=9000, supports_jumbo=False)
    nic, _ = make_nic(env, params)
    assert params.effective_mtu() == 1500
    with pytest.raises(ValueError):
        nic.try_post_tx(desc(9000))


def test_rx_buffers_and_raises_coalesced_irq():
    env = Environment()
    params = NicParams(coalesce_frames=2, coalesce_timeout_ns=1e6)
    nic, _ = make_nic(env, params)
    irqs = []
    nic.irq_callback = lambda: irqs.append(env.now)
    frame = Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=500)
    nic.receive_frame(frame)
    env.run(until=10_000)
    assert irqs == []  # below threshold, timer far away
    nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=500))
    env.run(until=20_000)
    assert len(irqs) == 1
    assert nic.rx_pending() == 2


def test_rx_coalesce_timer_fires_for_lone_frame():
    env = Environment()
    params = NicParams(coalesce_frames=8, coalesce_timeout_ns=5000)
    nic, _ = make_nic(env, params)
    irqs = []
    nic.irq_callback = lambda: irqs.append(env.now)
    nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=100))
    env.run()
    assert len(irqs) == 1
    assert irqs[0] >= 5000


def test_rx_no_coalescing_interrupts_every_frame():
    env = Environment()
    params = NicParams(coalescing_enabled=False)
    nic, _ = make_nic(env, params)
    irqs = []

    def handler():
        irqs.append(env.now)
        # emulate an immediate driver drain
        def drain(env):
            while nic.rx_pending():
                yield from nic.dma_frame_to_host()
            nic.irq_service_done()
        env.process(drain(env))

    nic.irq_callback = handler
    for _ in range(3):
        nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=100))
        env.run()
    assert len(irqs) == 3


def test_rx_ring_overflow_drops():
    env = Environment()
    params = NicParams(rx_ring_slots=2, coalesce_frames=100, coalesce_timeout_ns=1e9)
    nic, _ = make_nic(env, params)
    nic.irq_callback = lambda: None
    for _ in range(4):
        nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=100))
        env.run()
    assert nic.counters.get("rx_drops") == 2
    assert nic.rx_pending() == 2


def test_dma_frame_to_host_moves_oldest():
    env = Environment()
    params = NicParams(coalesce_frames=100, coalesce_timeout_ns=1e9)
    nic, _ = make_nic(env, params)
    nic.irq_callback = lambda: None
    for i, n in enumerate((100, 200)):
        nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=n))
    env.run()

    def drain(env):
        first = yield from nic.dma_frame_to_host()
        second = yield from nic.dma_frame_to_host()
        return (first.frame.payload_bytes, second.frame.payload_bytes)

    assert env.run(env.process(drain(env))) == (100, 200)


def test_dma_frame_to_host_empty_raises():
    env = Environment()
    nic, _ = make_nic(env)

    def drain(env):
        yield from nic.dma_frame_to_host()

    with pytest.raises(RuntimeError):
        env.run(env.process(drain(env)))


def test_push_mode_delivers_to_callback_without_irq():
    env = Environment()
    nic, _ = make_nic(env, rx_deliver="push")
    got = []
    nic.push_callback = lambda rx: got.append(rx)
    nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=700))
    env.run()
    assert len(got) == 1
    assert got[0].in_host_memory
    assert nic.coalescer.counters.get("interrupts") == 0


def test_irq_without_driver_raises():
    env = Environment()
    nic, _ = make_nic(env, NicParams(coalescing_enabled=False))
    nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=1))
    with pytest.raises(RuntimeError):
        env.run()


def test_service_done_rearms_for_leftover_frames():
    env = Environment()
    params = NicParams(coalesce_frames=2, coalesce_timeout_ns=1e9)
    nic, _ = make_nic(env, params)
    irqs = []
    nic.irq_callback = lambda: irqs.append(env.now)
    for _ in range(2):
        nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=10))
    env.run()
    assert len(irqs) == 1
    # Two more frames arrive while "in service".
    for _ in range(2):
        nic.receive_frame(Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC, payload_bytes=10))
    env.run()
    assert len(irqs) == 1  # suppressed during service
    nic.irq_service_done()  # driver drained nothing in this test; 4 remain
    # Re-fire goes through the hold-off timer (anti-livelock), not
    # immediately, even though the backlog exceeds the threshold.
    assert len(irqs) == 1
    env.run()
    assert len(irqs) == 2


def test_coalescer_threshold_counts():
    env = Environment()
    fired = []
    params = NicParams(coalesce_frames=3, coalesce_timeout_ns=1e9)
    c = InterruptCoalescer(env, params, lambda: fired.append(env.now))
    c.note_frame()
    c.note_frame()
    assert fired == []
    c.note_frame()
    assert len(fired) == 1
    c.service_done(0)
    assert c.pending == 0
