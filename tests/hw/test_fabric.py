"""Property tests for the multi-switch fabric (star/fat-tree/chain).

For every topology and every (src, dst) MAC pair: a unicast frame
reaches exactly its destination (no stray deliveries anywhere else),
takes a deterministic loop-free path, and crosses exactly the analytic
number of switches.  Plus the flow-mode regression: ``flow_mode="auto"``
on a multi-switch cluster must fall back to packet simulation with the
``unknown_topology`` reason, not crash or mis-model.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.node import mac_for
from repro.config import LinkParams, Topology, granada2003
from repro.hw import Channel, Fabric
from repro.hw.nic.frames import BROADCAST, EtherType, Frame, MacAddress
from repro.sim import Environment

LINK = LinkParams()

TOPOLOGIES = [
    pytest.param(None, 4, id="star-4"),
    pytest.param(Topology("fat-tree", leaf_fan=2, uplink_fan=2), 8, id="fat-tree-8"),
    pytest.param(Topology("fat-tree", leaf_fan=3, uplink_fan=1), 7, id="fat-tree-7"),
    pytest.param(Topology("chain", leaf_fan=2), 6, id="chain-6"),
    pytest.param(Topology("chain", leaf_fan=1), 4, id="chain-4"),
]


class Harness:
    """A fabric with scripted endpoints instead of full nodes."""

    def __init__(self, topology, num_nodes):
        self.env = Environment()
        self.n = num_nodes
        self.fabric = Fabric(self.env, LINK, topology, num_nodes)
        self.received = {i: [] for i in range(num_nodes)}
        self._uplinks = []
        for i in range(num_nodes):
            down = Channel(self.env, LINK, f"node{i}.down")
            up = Channel(self.env, LINK, f"node{i}.up")
            port = self.fabric.attach(i, down, mac_for(i))
            down.connect(lambda frame, i=i: self.received[i].append(frame))
            up.connect(port.switch.ingress(port))
            self._uplinks.append(up)
        self.fabric.finalize()

    def send(self, src, dst_mac, nbytes=64):
        frame = Frame(src=mac_for(src), dst=dst_mac,
                      ethertype=EtherType.CLIC, payload_bytes=nbytes)
        self.env.process(self._uplinks[src].transmit(frame))

    def run(self):
        self.env.run(until=10e9)


@pytest.mark.parametrize("topology,num_nodes", TOPOLOGIES)
def test_unicast_reaches_exactly_its_destination(topology, num_nodes):
    for src in range(num_nodes):
        for dst in range(num_nodes):
            if dst == src:
                continue
            h = Harness(topology, num_nodes)
            h.send(src, mac_for(dst))
            h.run()
            assert len(h.received[dst]) == 1, f"{src}->{dst} lost"
            strays = {i: len(v) for i, v in h.received.items()
                      if i != dst and v}
            assert not strays, f"{src}->{dst} also delivered to {strays}"
            assert h.fabric.counter_sum("unknown_dst") == 0
            assert h.fabric.counter_sum("drops") == 0


@pytest.mark.parametrize("topology,num_nodes", TOPOLOGIES)
def test_hop_count_matches_analytic_depth(topology, num_nodes):
    for src in range(num_nodes):
        for dst in range(num_nodes):
            if dst == src:
                continue
            h = Harness(topology, num_nodes)
            h.send(src, mac_for(dst))
            h.run()
            # One unicast: total forwards across the fabric == switches
            # on the path — a loop would inflate this count.
            hops = h.fabric.counter_sum("forwarded")
            assert hops == h.fabric.hops(src, dst), (
                f"{src}->{dst}: {hops} forwards, "
                f"analytic {h.fabric.hops(src, dst)}"
            )


@pytest.mark.parametrize("topology,num_nodes", TOPOLOGIES)
def test_path_is_deterministic(topology, num_nodes, seeded_rng):
    rng = seeded_rng()
    pairs = [(int(s), int(d)) for s, d in
             rng.integers(0, num_nodes, size=(8, 2)) if s != d]
    journeys = []
    for _ in range(2):
        h = Harness(topology, num_nodes)
        for src, dst in pairs:
            h.send(src, mac_for(dst))
        h.run()
        journeys.append(h.fabric.uplink_stats())
    assert journeys[0] == journeys[1]


@pytest.mark.parametrize("topology,num_nodes", TOPOLOGIES)
def test_broadcast_reaches_every_node_exactly_once(topology, num_nodes):
    # Loop-free flooding: the fat-tree's spanning tree through spine 0
    # (redundant uplinks have flood=False) must not duplicate or loop.
    h = Harness(topology, num_nodes)
    h.send(0, BROADCAST)
    h.run()
    for i in range(1, num_nodes):
        assert len(h.received[i]) == 1, f"node {i} got {len(h.received[i])}"
    assert len(h.received[0]) == 0  # never hairpins to the sender


def test_fat_tree_spreads_uplinks_by_destination():
    topo = Topology("fat-tree", leaf_fan=2, uplink_fan=2)
    h = Harness(topo, 8)
    # node 0 -> nodes 2..5: destinations alternate spine 0/1.
    for dst in (2, 3, 4, 5):
        h.send(0, mac_for(dst))
    h.run()
    stats = h.fabric.uplink_stats()
    up_total = sum(s["frames"] for name, s in stats.items()
                   if "->switch4" in name or "->switch5" in name)
    assert up_total == 4
    # dst 2 and 4 ride spine 0 (switch4); 3 and 5 ride spine 1.
    assert stats["trunk.switch->switch4"]["frames"] == 2
    assert stats["trunk.switch->switch5"]["frames"] == 2


def test_trunk_names_carry_prefix_and_skip_nic_suffixes():
    h = Harness(Topology("chain", leaf_fan=1), 3)
    assert h.fabric.trunks, "chain of 3 must have trunks"
    for name, _ in h.fabric.trunks:
        assert name.startswith("trunk.")
        assert not name.endswith(".up") and not name.endswith(".down")


def test_star_topology_none_is_single_legacy_switch():
    h = Harness(None, 4)
    assert not h.fabric.multi_switch
    assert h.fabric.switch.name == "switch"
    assert h.fabric.trunks == []
    assert h.fabric.hops(0, 3) == 1


# ---------------------------------------------------------------------------
# flow-mode regression: multi-switch clusters take the unknown_topology
# fallback instead of mis-modeling trains over a single-switch route map.


def _flow_cluster(topology):
    cfg = granada2003(num_nodes=4)
    cfg = cfg.with_topology(topology) if topology else cfg
    import dataclasses

    cfg = dataclasses.replace(
        cfg, sim=dataclasses.replace(cfg.sim, flow_mode="auto"))
    return Cluster(cfg)


def test_flow_mode_auto_falls_back_on_fat_tree():
    cluster = _flow_cluster(Topology("fat-tree", leaf_fan=2, uplink_fan=2))
    controller = cluster.flow
    assert controller is not None
    assert not controller.topology_known
    plan = controller.plan_train(0, 1, None, 16, 0.0)
    assert plan == 0  # packet-exact path, no train
    assert controller.counters["fallback_unknown_topology"] == 1

    # And the cluster still moves real traffic end to end.
    from repro.oskernel import UserProcess
    from repro.protocols.clic import ClicEndpoint

    tx, rx = UserProcess(cluster.node(0), name="tx"), UserProcess(
        cluster.node(3), name="rx")

    def tx_body(proc):
        ep = ClicEndpoint(proc, 5)
        yield from ep.send(3, 120_000, tag=1)

    def rx_body(proc):
        ep = ClicEndpoint(proc, 5)
        msg = yield from ep.recv()
        return msg.nbytes

    tx.run(tx_body)
    done = rx.run(rx_body)
    cluster.env.run(until=5e9)
    assert done.value == 120_000


def test_flow_mode_auto_still_plans_on_single_switch():
    cluster = _flow_cluster(None)
    controller = cluster.flow
    assert controller is not None
    assert controller.topology_known
    assert controller.counters.get("fallback_unknown_topology", 0) == 0
