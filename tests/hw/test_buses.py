"""Unit tests for the memory and PCI bus models."""

import pytest

from repro.config import CpuParams, MemoryParams, PciParams
from repro.hw import Cpu, MemoryBus, PciBus, PRIO_KERNEL
from repro.sim import Environment


def test_memory_copy_time_linear_in_bytes():
    env = Environment()
    mem = MemoryBus(env, MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=100))
    assert mem.copy_time(0) == 100
    assert mem.copy_time(1000) == pytest.approx(100 + 1000)


def test_memory_copy_time_rejects_negative():
    env = Environment()
    mem = MemoryBus(env, MemoryParams())
    with pytest.raises(ValueError):
        mem.copy_time(-1)


def test_cpu_copy_charges_cpu_and_bus():
    env = Environment()
    mem = MemoryBus(env, MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=0))
    cpu = Cpu(env, CpuParams())

    def work(env):
        yield from mem.cpu_copy(cpu, 5000, PRIO_KERNEL)
        return env.now

    assert env.run(env.process(work(env))) == pytest.approx(5000)
    assert cpu.busy.total_busy == pytest.approx(5000)
    assert mem.counters.get("cpu_copy_bytes") == 5000


def test_memory_bus_serializes_copies():
    env = Environment()
    mem = MemoryBus(env, MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=0))
    cpu_a = Cpu(env, CpuParams(), "a")
    cpu_b = Cpu(env, CpuParams(), "b")
    ends = []

    def work(env, cpu):
        yield from mem.cpu_copy(cpu, 1000, PRIO_KERNEL)
        ends.append(env.now)

    env.process(work(env, cpu_a))
    env.process(work(env, cpu_b))
    env.run()
    assert ends == [1000, 2000]


def test_pci_effective_bandwidth():
    p = PciParams(clock_hz=33e6, width_bytes=4, dma_efficiency=0.5)
    assert p.effective_bw_Bps == pytest.approx(66e6)


def test_pci_transfer_time_includes_setup():
    env = Environment()
    pci = PciBus(env, PciParams(clock_hz=25e6, width_bytes=4, dma_efficiency=1.0, transaction_setup_ns=500))
    # 100e6 B/s -> 1000 bytes = 10_000 ns + 500 setup
    assert pci.transfer_time(1000) == pytest.approx(10_500)


def test_pci_dma_serializes_transactions():
    env = Environment()
    pci = PciBus(env, PciParams(clock_hz=25e6, width_bytes=4, dma_efficiency=1.0, transaction_setup_ns=0))
    ends = []

    def work(env):
        yield from pci.dma(1000)
        ends.append(env.now)

    env.process(work(env))
    env.process(work(env))
    env.run()
    assert ends == [10_000, 20_000]
    assert pci.counters.get("dma_transactions") == 2
    assert pci.counters.get("dma_bytes") == 2000


def test_pci_priority_grants_bus_in_order():
    env = Environment()
    pci = PciBus(env, PciParams(transaction_setup_ns=0))
    order = []

    def hold(env):
        yield from pci.dma(10_000, priority=5)

    def want(env, name, prio):
        yield env.timeout(1)
        yield from pci.dma(10, priority=prio)
        order.append(name)

    env.process(hold(env))
    env.process(want(env, "low", 9))
    env.process(want(env, "high", 1))
    env.run()
    assert order == ["high", "low"]


def test_pci_utilization():
    env = Environment()
    pci = PciBus(env, PciParams(clock_hz=25e6, width_bytes=4, dma_efficiency=1.0, transaction_setup_ns=0))

    def work(env):
        yield from pci.dma(1000)  # 10_000 ns busy
        yield env.timeout(10_000)  # idle

    env.run(env.process(work(env)))
    assert pci.utilization() == pytest.approx(0.5)
