"""Unit tests for the CPU model: priorities, preemption, accounting."""

import pytest

from repro.config import CpuParams
from repro.hw import PRIO_IRQ, PRIO_KERNEL, PRIO_USER, Cpu
from repro.sim import Environment


def make_cpu(env):
    return Cpu(env, CpuParams(), name="cpu0")


def test_execute_charges_exact_duration():
    env = Environment()
    cpu = make_cpu(env)

    def work(env):
        yield from cpu.execute(1000, PRIO_USER)
        return env.now

    assert env.run(env.process(work(env))) == 1000
    assert cpu.busy.total_busy == 1000


def test_execute_rejects_negative():
    env = Environment()
    cpu = make_cpu(env)

    def work(env):
        yield from cpu.execute(-5)

    with pytest.raises(ValueError):
        env.run(env.process(work(env)))


def test_irq_preempts_user_and_user_resumes():
    env = Environment()
    cpu = make_cpu(env)
    log = []

    def user(env):
        yield from cpu.execute(1000, PRIO_USER)
        log.append(("user-done", env.now))

    def irq(env):
        yield env.timeout(300)
        yield from cpu.execute(200, PRIO_IRQ)
        log.append(("irq-done", env.now))

    env.process(user(env))
    env.process(irq(env))
    env.run()
    # User ran 300ns, IRQ ran 300..500, user resumed for its remaining 700.
    assert log == [("irq-done", 500), ("user-done", 1200)]
    assert cpu.counters.get("preemptions") == 1
    assert cpu.busy.total_busy == 1200


def test_kernel_does_not_preempt_kernel():
    env = Environment()
    cpu = make_cpu(env)
    log = []

    def first(env):
        yield from cpu.execute(100, PRIO_KERNEL)
        log.append(("first", env.now))

    def second(env):
        yield env.timeout(10)
        yield from cpu.execute(100, PRIO_KERNEL)
        log.append(("second", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert log == [("first", 100), ("second", 200)]


def test_priority_ordering_of_queued_work():
    env = Environment()
    cpu = make_cpu(env)
    order = []

    def holder(env):
        yield from cpu.execute(100, PRIO_KERNEL)

    def queued(env, name, prio):
        yield env.timeout(1)
        yield from cpu.execute(10, prio)
        order.append(name)

    env.process(holder(env))
    env.process(queued(env, "user", PRIO_USER))
    env.process(queued(env, "kernel", PRIO_KERNEL))
    env.run()
    assert order == ["kernel", "user"]


def test_total_busy_time_conserved_under_nested_preemption():
    env = Environment()
    cpu = make_cpu(env)

    def user(env):
        yield from cpu.execute(10_000, PRIO_USER)

    def irqs(env):
        for _ in range(5):
            yield env.timeout(1_000)
            yield from cpu.execute(100, PRIO_IRQ)

    env.process(user(env))
    env.process(irqs(env))
    env.run()
    # total work = 10000 + 5*100
    assert cpu.busy.total_busy == pytest.approx(10_500)
    # wall-clock end = work is serialized on one CPU
    assert env.now == pytest.approx(10_500)


def test_utilization_reports_busy_fraction():
    env = Environment()
    cpu = make_cpu(env)

    def work(env):
        yield from cpu.execute(500, PRIO_USER)
        yield env.timeout(500)

    env.run(env.process(work(env)))
    assert cpu.utilization() == pytest.approx(0.5)


def test_context_switch_and_scheduler_helpers():
    env = Environment()
    params = CpuParams(context_switch_ns=123, scheduler_pass_ns=77)
    cpu = Cpu(env, params)

    def work(env):
        yield from cpu.context_switch()
        yield from cpu.scheduler_pass()
        return env.now

    assert env.run(env.process(work(env))) == 200
    assert cpu.counters.get("context_switches") == 1
    assert cpu.counters.get("scheduler_passes") == 1
