"""Unit tests for Ethernet framing, links, and the switch."""

import pytest

from repro.config import LinkParams
from repro.hw import Channel, Link, Switch
from repro.hw.nic.frames import (
    BROADCAST,
    EtherType,
    Frame,
    MacAddress,
    frame_time_ns,
    max_payload,
    wire_bytes,
)
from repro.sim import Environment, RngStreams

LINK = LinkParams()


def make_frame(nbytes, dst=MacAddress(2), src=MacAddress(1)):
    return Frame(src=src, dst=dst, ethertype=EtherType.CLIC, payload_bytes=nbytes)


def test_wire_bytes_includes_all_overheads():
    f = make_frame(1500)
    # 8 preamble + 14 mac + 1500 + 4 crc + 12 ifg
    assert wire_bytes(f, LINK) == 8 + 14 + 1500 + 4 + 12


def test_wire_bytes_pads_to_min_frame():
    f = make_frame(0)
    # mac frame would be 18 < 64 -> padded; plus preamble and ifg
    assert wire_bytes(f, LINK) == 8 + 64 + 12


def test_frame_time_gigabit():
    f = make_frame(1500)
    t = frame_time_ns(f, LINK)
    assert t == pytest.approx(wire_bytes(f, LINK) * 8)  # 1 Gb/s = 1 bit/ns


def test_max_payload_matches_mtu():
    assert max_payload(1500) == 1500
    assert max_payload(9000) == 9000
    with pytest.raises(ValueError):
        max_payload(0)


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        make_frame(-1)


def test_mac_address_str_and_broadcast():
    assert str(BROADCAST) == "ff:ff:ff:ff:ff:ff"
    assert BROADCAST.is_broadcast
    assert not MacAddress(3).is_broadcast
    assert "02:00" in str(MacAddress(3))


def test_channel_delivers_after_serialization_and_propagation():
    env = Environment()
    chan = Channel(env, LINK, "c")
    arrivals = []
    chan.connect(lambda f: arrivals.append((f.frame_id, env.now)))
    f = make_frame(1500)

    def send(env):
        yield from chan.transmit(f)
        return env.now

    sent_at = env.run(env.process(send(env)))
    env.run()
    assert sent_at == pytest.approx(frame_time_ns(f, LINK))
    assert arrivals[0][1] == pytest.approx(sent_at + LINK.propagation_ns)


def test_channel_serializes_back_to_back_frames():
    env = Environment()
    chan = Channel(env, LINK, "c")
    arrivals = []
    chan.connect(lambda f: arrivals.append(env.now))

    def send(env):
        yield from chan.transmit(make_frame(1500))

    env.process(send(env))
    env.process(send(env))
    env.run()
    one = frame_time_ns(make_frame(1500), LINK)
    assert arrivals[0] == pytest.approx(one + LINK.propagation_ns)
    assert arrivals[1] == pytest.approx(2 * one + LINK.propagation_ns)


def test_channel_requires_sink():
    env = Environment()
    chan = Channel(env, LINK)

    def send(env):
        yield from chan.transmit(make_frame(10))

    with pytest.raises(RuntimeError):
        env.run(env.process(send(env)))


def test_channel_loss_injection_drops_frames():
    env = Environment()
    rng = RngStreams(1).stream("loss")
    chan = Channel(env, LINK, loss_rate=1.0, rng=rng)
    arrivals = []
    chan.connect(lambda f: arrivals.append(f))

    def send(env):
        yield from chan.transmit(make_frame(100))

    env.process(send(env))
    env.run()
    assert arrivals == []
    assert chan.counters.get("frames_lost") == 1


def test_channel_loss_requires_rng():
    env = Environment()
    with pytest.raises(ValueError):
        Channel(env, LINK, loss_rate=0.5)


def build_switched_pair(env):
    """Two endpoints (sink lists) behind a switch; returns tx channels."""
    switch = Switch(env, LINK)
    inboxes = {1: [], 2: [], 3: []}
    tx_chans = {}
    for node in (1, 2, 3):
        mac = MacAddress(node)
        to_switch = Channel(env, LINK, f"n{node}->sw")
        from_switch = Channel(env, LINK, f"sw->n{node}")
        port = switch.attach(from_switch, mac)
        to_switch.connect(switch.ingress(port))
        from_switch.connect(lambda f, n=node: inboxes[n].append(f))
        tx_chans[node] = to_switch
    return switch, tx_chans, inboxes


def test_switch_forwards_unicast_to_correct_port():
    env = Environment()
    switch, tx, inboxes = build_switched_pair(env)

    def send(env):
        yield from tx[1].transmit(make_frame(500, dst=MacAddress(2), src=MacAddress(1)))

    env.process(send(env))
    env.run()
    assert len(inboxes[2]) == 1
    assert inboxes[1] == [] and inboxes[3] == []
    assert switch.counters.get("forwarded") == 1


def test_switch_broadcast_fans_out_to_all_other_ports():
    env = Environment()
    switch, tx, inboxes = build_switched_pair(env)

    def send(env):
        yield from tx[1].transmit(make_frame(500, dst=BROADCAST, src=MacAddress(1)))

    env.process(send(env))
    env.run()
    assert len(inboxes[2]) == 1 and len(inboxes[3]) == 1
    assert inboxes[1] == []


def test_switch_unknown_destination_counted_dropped():
    env = Environment()
    switch, tx, inboxes = build_switched_pair(env)

    def send(env):
        yield from tx[1].transmit(make_frame(100, dst=MacAddress(99)))

    env.process(send(env))
    env.run()
    assert switch.counters.get("unknown_dst") == 1
    assert all(not v for v in inboxes.values())


def test_switch_rejects_duplicate_mac():
    env = Environment()
    switch = Switch(env, LINK)
    c1 = Channel(env, LINK)
    c2 = Channel(env, LINK)
    switch.attach(c1, MacAddress(7))
    with pytest.raises(ValueError):
        switch.attach(c2, MacAddress(7))


def test_switch_store_and_forward_latency():
    env = Environment()
    switch, tx, inboxes = build_switched_pair(env)
    f = make_frame(1500, dst=MacAddress(2))

    def send(env):
        yield from tx[1].transmit(f)

    env.process(send(env))
    env.run()
    wire = frame_time_ns(f, LINK)
    # serialize to switch + propagation + forward + serialize out + propagation
    expected = wire + LINK.propagation_ns + switch.forward_ns + wire + LINK.propagation_ns
    # inbox records on arrival; we can't see timestamps there -> re-run with sink capture
    env2 = Environment()
    switch2, tx2, _ = build_switched_pair(env2)
    times = []
    # Rebind node 2 sink to record time
    switch2.ports[1].egress._sink = lambda fr: times.append(env2.now)

    def send2(env):
        yield from tx2[1].transmit(make_frame(1500, dst=MacAddress(2)))

    env2.process(send2(env2))
    env2.run()
    assert times[0] == pytest.approx(expected)


def test_full_duplex_link_directions_independent():
    env = Environment()
    link = Link(env, LINK, "l")
    t_a, t_b = [], []
    link.a_to_b.connect(lambda f: t_a.append(env.now))
    link.b_to_a.connect(lambda f: t_b.append(env.now))

    def send(env, chan):
        yield from chan.transmit(make_frame(9000))

    env.process(send(env, link.a_to_b))
    env.process(send(env, link.b_to_a))
    env.run()
    # Both directions complete at the same time: no shared serialization.
    assert t_a[0] == pytest.approx(t_b[0])


# -- adversarial delivery on the wire ----------------------------------------
def _faulted_channel(env, spec, seed=7, tracer=None):
    from repro.faults import ChannelFaults

    rng = RngStreams(seed).stream("loss.test")
    return Channel(env, LINK, "c", faults=ChannelFaults(spec, rng=rng),
                   tracer=tracer)


def test_channel_duplication_delivers_extra_copies():
    from repro.faults import Duplication, LinkFaultSpec

    env = Environment()
    chan = _faulted_channel(env, LinkFaultSpec(duplicate=Duplication(rate=1.0)))
    arrivals = []
    chan.connect(lambda f: arrivals.append(f.frame_id))

    def send(env):
        yield from chan.transmit(make_frame(100))

    env.process(send(env))
    env.run()
    assert len(arrivals) == 2  # original + 1 forced copy
    assert chan.counters.get("frames_offered") == 1
    assert chan.counters.get("frames_duplicated") == 1
    assert chan.counters.get("frames") == 2  # every delivered copy counts
    # conservation: offered + duplicated == delivered + lost
    assert (chan.counters.get("frames_offered")
            + chan.counters.get("frames_duplicated")
            == chan.counters.get("frames") + chan.counters.get("frames_lost"))


def test_channel_jitter_can_reorder_frames():
    """With jitter ~ the serialization time, some successor overtakes a
    jittered frame over a long enough burst."""
    from repro.faults import DelayJitter, LinkFaultSpec

    env = Environment()
    one = frame_time_ns(make_frame(1500), LINK)
    spec = LinkFaultSpec(jitter=DelayJitter(rate=0.5, max_delay_ns=4 * one))
    chan = _faulted_channel(env, spec)
    arrivals = []
    chan.connect(lambda f: arrivals.append(f.payload))

    def send(env, n):
        yield from chan.transmit(
            Frame(src=MacAddress(1), dst=MacAddress(2),
                  ethertype=EtherType.CLIC, payload_bytes=1500, payload=n))

    def burst(env):
        for n in range(40):
            yield from send(env, n)

    env.process(burst(env))
    env.run()
    assert sorted(arrivals) == list(range(40))  # nothing lost
    assert arrivals != sorted(arrivals)  # ...but not in order
    assert chan.counters.get("frames_lost") == 0


def test_wire_drop_and_dup_journey_hops():
    from types import SimpleNamespace

    from repro.faults import Duplication, LinkFaultSpec

    class _JourneyLog:
        """Minimal journey index standing in for the cluster tracer's."""

        def __init__(self):
            self.hops = []

        def hop(self, payload, hop, scope, **detail):
            self.hops.append((hop, detail))

    env = Environment()
    log = _JourneyLog()
    spec = LinkFaultSpec(loss_rate=0.5, duplicate=Duplication(rate=1.0))
    chan = _faulted_channel(env, spec, tracer=SimpleNamespace(journeys=log))
    chan.connect(lambda f: None)

    def burst(env):
        for _ in range(30):
            yield from chan.transmit(make_frame(100))

    env.process(burst(env))
    env.run()
    kinds = {h for h, _ in log.hops}
    assert kinds == {"wire_drop", "wire_dup"}
    drop_reasons = {d["reason"] for h, d in log.hops if h == "wire_drop"}
    assert drop_reasons == {"lost"}
    assert all(d["copies"] >= 2 for h, d in log.hops if h == "wire_dup")


def test_congestion_stretches_serialization_and_adds_latency():
    from repro.faults import CongestionWindow, LinkFaultSpec, OutageWindow
    from repro.faults import ChannelFaults

    env = Environment()
    one = frame_time_ns(make_frame(1500), LINK)
    spike = CongestionWindow(window=OutageWindow(0.0, 10 * one),
                             bandwidth_factor=4.0, extra_latency_ns=2_000.0)
    chan = Channel(env, LINK, "c",
                   faults=ChannelFaults(LinkFaultSpec(congestion=(spike,)), rng=None))
    arrivals = []
    chan.connect(lambda f: arrivals.append(env.now))

    def send(env):
        yield from chan.transmit(make_frame(1500))
        return env.now

    done = env.run(env.process(send(env)))
    env.run()
    # the wire is held 4x longer, and delivery picks up the queueing delay
    assert done == pytest.approx(4 * one)
    assert arrivals[0] == pytest.approx(4 * one + LINK.propagation_ns + 2_000.0)


def test_congestion_over_leaves_timing_untouched():
    from repro.faults import ChannelFaults, CongestionWindow, LinkFaultSpec, OutageWindow

    env = Environment()
    spike = CongestionWindow(window=OutageWindow(0.0, 1.0), bandwidth_factor=8.0)
    chan = Channel(env, LINK, "c",
                   faults=ChannelFaults(LinkFaultSpec(congestion=(spike,)), rng=None))
    arrivals = []
    chan.connect(lambda f: arrivals.append(env.now))
    one = frame_time_ns(make_frame(1500), LINK)

    def send(env):
        yield env.timeout(100.0)  # past the spike
        yield from chan.transmit(make_frame(1500))

    env.process(send(env))
    env.run()
    assert arrivals[0] == pytest.approx(100.0 + one + LINK.propagation_ns)
