"""Switch egress-queue overflow and congestion behaviour."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint


def test_switch_egress_overflow_drops_and_clic_recovers():
    """Two senders flood one receiver through a switch with tiny egress
    queues: the switch drops (counted), CLIC retransmits, everything
    still arrives exactly once."""
    cluster = Cluster(granada2003(mtu=MTU_STANDARD, num_nodes=3))
    cluster.switch.queue_frames = 4
    for port in cluster.switch.ports:
        port.queue.capacity = 4
    got = []

    def sender(src):
        def body(proc):
            ep = ClicEndpoint(proc, 3)
            yield from ep.send(2, 150_000, tag=src)
            yield from ep.flush(2)

        return body

    def receiver(proc):
        ep = ClicEndpoint(proc, 3)
        for _ in range(2):
            msg = yield from ep.recv()
            got.append((msg.tag, msg.nbytes))

    cluster.nodes[0].spawn().run(sender(0))
    cluster.nodes[1].spawn().run(sender(1))
    done = cluster.nodes[2].spawn().run(receiver)
    cluster.env.run(done)
    assert sorted(got) == [(0, 150_000), (1, 150_000)]
    # With 4-frame egress queues and two full-rate senders, drops happen.
    assert cluster.switch.counters.get("drops") > 0
    retx = sum(n.clic.counters.get("pkts_retx") for n in cluster.nodes)
    assert retx > 0


def test_no_livelock_with_per_frame_irq_driver():
    """Even the pre-NAPI (budget=1, no coalescing) driver configuration
    must complete a bulk transfer: window flow control prevents the
    receive livelock."""
    from dataclasses import replace

    cfg = granada2003(mtu=MTU_STANDARD)
    node = cfg.node.with_coalescing(False)
    node = replace(node, driver=replace(node.driver, rx_budget_per_irq=1))
    cluster = Cluster(cfg.with_node(node))
    got = []

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 500_000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        got.append(msg.nbytes)

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    d0, d1 = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([d0, d1]))
    assert got == [500_000]
