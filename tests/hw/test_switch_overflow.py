"""Switch egress-queue overflow and congestion behaviour."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint


def test_switch_egress_overflow_drops_and_clic_recovers():
    """Two senders flood one receiver through a switch with tiny egress
    queues: the switch drops (counted), CLIC retransmits, everything
    still arrives exactly once."""
    cluster = Cluster(granada2003(mtu=MTU_STANDARD, num_nodes=3))
    cluster.switch.queue_frames = 4
    for port in cluster.switch.ports:
        port.queue.capacity = 4
    got = []

    def sender(src):
        def body(proc):
            ep = ClicEndpoint(proc, 3)
            yield from ep.send(2, 150_000, tag=src)
            yield from ep.flush(2)

        return body

    def receiver(proc):
        ep = ClicEndpoint(proc, 3)
        for _ in range(2):
            msg = yield from ep.recv()
            got.append((msg.tag, msg.nbytes))

    cluster.nodes[0].spawn().run(sender(0))
    cluster.nodes[1].spawn().run(sender(1))
    done = cluster.nodes[2].spawn().run(receiver)
    cluster.env.run(done)
    assert sorted(got) == [(0, 150_000), (1, 150_000)]
    # With 4-frame egress queues and two full-rate senders, drops happen.
    assert cluster.switch.counters.get("drops") > 0
    retx = sum(n.clic.counters.get("pkts_retx") for n in cluster.nodes)
    assert retx > 0


def test_no_livelock_with_per_frame_irq_driver():
    """Even the pre-NAPI (budget=1, no coalescing) driver configuration
    must complete a bulk transfer: window flow control prevents the
    receive livelock."""
    from dataclasses import replace

    cfg = granada2003(mtu=MTU_STANDARD)
    node = cfg.node.with_coalescing(False)
    node = replace(node, driver=replace(node.driver, rx_budget_per_irq=1))
    cluster = Cluster(cfg.with_node(node))
    got = []

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 500_000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        got.append(msg.nbytes)

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    d0, d1 = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([d0, d1]))
    assert got == [500_000]


# -- port-level backpressure unit tests --------------------------------------
from types import SimpleNamespace

from repro.config import LinkParams
from repro.faults import OutageWindow
from repro.hw import Channel, Switch
from repro.hw.nic.frames import EtherType, Frame, MacAddress, frame_time_ns
from repro.sim import Environment

LINK = LinkParams()


class _JourneyLog:
    """Captures journey hops the way the real journey index records them."""

    def __init__(self):
        self.hops = []

    def hop(self, payload, hop, scope, **detail):
        self.hops.append((hop, detail))


def _switch_with_port(queue_frames, backpressure="drop", tracer=None):
    env = Environment()
    switch = Switch(env, LINK, queue_frames=queue_frames, tracer=tracer,
                    backpressure=backpressure)
    egress = Channel(env, LINK, "sw->n1")
    egress.connect(lambda f: None)
    port = switch.attach(egress, MacAddress(1))
    return env, switch, port


def _frame(n=0):
    return Frame(src=MacAddress(2), dst=MacAddress(1), ethertype=EtherType.CLIC,
                 payload_bytes=1500, payload=n)


def test_enqueue_drops_at_exactly_full_capacity():
    """The overflow check is >= capacity: the first frame past a full
    queue is dropped, counted, and never touches the queue."""
    journeys = _JourneyLog()
    env, switch, port = _switch_with_port(
        2, tracer=SimpleNamespace(journeys=journeys))
    port.enqueue(_frame(0))
    port.enqueue(_frame(1))
    assert len(port.queue.items) == 2
    assert switch.counters.get("drops") == 0
    port.enqueue(_frame(2))
    assert len(port.queue.items) == 2  # untouched
    assert switch.counters.get("drops") == 1
    drop_hops = [d for h, d in journeys.hops if h == "switch_drop"]
    assert drop_hops == [{"port": 0, "reason": "overflow"}]


def test_enqueue_refreshes_depth_gauges():
    env, switch, port = _switch_with_port(4)
    port.enqueue(_frame(0))
    port.enqueue(_frame(1))
    assert switch.counters.level("port0_depth") == 2
    assert switch.counters.level("max_queue_depth") == 2
    assert port.max_depth == 2
    assert switch.max_queue_depth == 2


def test_overflow_drop_does_not_move_the_depth_gauge():
    env, switch, port = _switch_with_port(1)
    port.enqueue(_frame(0))
    port.enqueue(_frame(1))  # dropped
    assert switch.counters.level("port0_depth") == 1
    assert port.max_depth == 1


def test_pause_mode_blocks_instead_of_dropping():
    """With capacity 1 and a busy transmitter, the third frame finds the
    queue full: the producer stalls (counted, timed) and no frame is
    shed — everything arrives, in order."""
    env, switch, port = _switch_with_port(1, backpressure="pause")
    arrivals = []
    port.egress._sink = lambda f: arrivals.append(f.payload)

    def producer(env):
        for n in range(3):
            yield from port.enqueue_blocking(_frame(n))

    env.process(producer(env))
    env.run()
    assert arrivals == [0, 1, 2]
    assert switch.counters.get("drops") == 0
    assert switch.counters.get("pause_events") == 1
    # the stall lasted one egress serialization, not an instant
    assert switch.counters.get("pause_time_ns") == pytest.approx(
        frame_time_ns(_frame(0), LINK))


def test_pause_mode_still_drops_during_blackout():
    """A blacked-out port is dark, not slow: pause mode must not park
    frames destined for a dead egress."""
    env, switch, port = _switch_with_port(8, backpressure="pause")
    switch.set_blackouts(port, [OutageWindow(0.0, 1_000.0)])

    def producer(env):
        yield from port.enqueue_blocking(_frame(0))

    env.process(producer(env))
    env.run()
    assert switch.counters.get("blackout_drops") == 1
    assert switch.counters.get("pause_events") == 0
    assert port.queue.items == []


def test_switch_rejects_unknown_backpressure_mode():
    env = Environment()
    with pytest.raises(ValueError):
        Switch(env, LINK, backpressure="reject")
