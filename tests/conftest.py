"""Shared fixtures for the test suite.

The headline export is :func:`seeded_rng`, the one way randomized tests
should obtain randomness.  It hands out numpy Generators whose seed is a
deterministic function of the test's node id (so every test, including
each parametrization, gets its own stable stream), records that seed on
the test item, and — via the report hook below — prints it in the
failure output together with the ``--rng-seed`` incantation that forces
the same stream for a local repro.
"""

import zlib

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--rng-seed",
        type=int,
        default=None,
        help="override the per-test base seed used by the seeded_rng fixture",
    )


class SeededRng:
    """Factory for reproducible RNG streams tied to one base seed.

    Calling it returns a *fresh* ``numpy.random.Generator``; calling it
    twice with the same ``salt`` returns identically-seeded generators
    (handy for determinism tests).  Distinct salts give independent
    streams off the same base seed.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def __call__(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng([self.seed, salt])

    def __repr__(self) -> str:  # shows up in pytest fixture introspection
        return f"SeededRng(seed={self.seed})"


@pytest.fixture
def seeded_rng(request) -> SeededRng:
    """Per-test deterministic RNG factory; failure output prints the seed."""
    override = request.config.getoption("--rng-seed")
    if override is not None:
        seed = override
    else:
        seed = zlib.crc32(request.node.nodeid.encode()) & 0x7FFFFFFF
    request.node._seeded_rng_seed = seed
    return SeededRng(seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_seeded_rng_seed", None)
    if seed is not None and report.failed:
        report.sections.append(
            (
                "seeded_rng",
                f"base seed {seed} — reproduce with: pytest {item.nodeid!r} --rng-seed={seed}",
            )
        )
