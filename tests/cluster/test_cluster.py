"""Cluster assembly tests."""

import pytest

from repro.cluster import Cluster, mac_for
from repro.config import MTU_STANDARD, granada2003


def test_mac_convention_unique_across_nodes_and_channels():
    macs = {mac_for(n, c).value for n in range(8) for c in range(4)}
    assert len(macs) == 32


def test_mac_channel_out_of_range():
    with pytest.raises(ValueError):
        mac_for(0, 16)


def test_cluster_builds_requested_topology():
    cluster = Cluster(granada2003(num_nodes=5))
    assert len(cluster.nodes) == 5
    assert len(cluster.switch.ports) == 5
    for node in cluster.nodes:
        assert node.clic is not None
        assert node.tcp is not None
        assert node.gamma is None and node.via is None


def test_push_cluster_attaches_comparators():
    cluster = Cluster(granada2003(), protocols=("gamma",))
    for node in cluster.nodes:
        assert node.gamma is not None
        assert node.clic is None


def test_node_overrides_build_heterogeneous_cluster():
    cfg = granada2003()
    std = cfg.node.with_mtu(MTU_STANDARD)
    cluster = Cluster(cfg, node_overrides={1: std})
    assert cluster.nodes[0].mtu() == 9000
    assert cluster.nodes[1].mtu() == 1500


def test_bonded_node_has_multiple_ports():
    cfg = granada2003()
    cfg = cfg.with_node(cfg.node.with_nic_count(2))
    cluster = Cluster(cfg)
    assert len(cluster.nodes[0].nics) == 2
    # 2 nodes x 2 NICs = 4 switch ports.
    assert len(cluster.switch.ports) == 4


def test_spawn_assigns_unique_pids():
    cluster = Cluster(granada2003())
    a = cluster.nodes[0].spawn()
    b = cluster.nodes[0].spawn("named")
    assert a.pid != b.pid
    assert b.name == "named"
    assert "node0" in repr(a.node)
    assert "UserProcess" in repr(b)


def test_run_until_advances_clock():
    cluster = Cluster(granada2003())
    cluster.run(until=1_000)
    assert cluster.env.now == 1_000


def test_cluster_repr():
    cluster = Cluster(granada2003())
    assert "protocols" in repr(cluster)


def test_deterministic_rebuild_same_results():
    """Two identical clusters produce bit-identical results."""
    from repro.workloads import clic_pair, pingpong

    r1 = pingpong(Cluster(granada2003(seed=5)), clic_pair(), 10_000, repeats=2, warmup=1)
    r2 = pingpong(Cluster(granada2003(seed=5)), clic_pair(), 10_000, repeats=2, warmup=1)
    assert r1.rtt_ns == r2.rtt_ns
