"""Flow-vs-packet equivalence: the hybrid engine must not change physics.

Three tiers of agreement, mirroring the engine's contract:

* ``flow_mode="off"`` IS the packet-exact reference — asserted
  elsewhere by every seeded test in the suite;
* ``"auto"`` on a quiet bulk path must reproduce the exact engine's
  gate metrics within a small tolerance while processing an order of
  magnitude fewer events;
* ``"auto"`` where the fast path provably never engages (channel
  bonding, journey tracing) must be *bit-identical* to ``"off"``.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.config import MTU_JUMBO, MTU_STANDARD, granada2003
from repro.obs import jsonable
from repro.workloads import clic_pair, pingpong, stream

#: relative tolerance on tolerance-bounded (not bit-exact) agreement
TOLERANCE = 0.05


def _cfg(mode, mtu=MTU_STANDARD):
    return replace(granada2003(mtu=mtu), profile=True).with_flow_mode(mode)


def _snapshot(cluster):
    return json.dumps(jsonable(cluster.metrics.snapshot()), sort_keys=True)


def _stream(cfg, nbytes=1_000_000, messages=4):
    cluster = Cluster(cfg, protocols=("clic",))
    res = stream(cluster, clic_pair(), nbytes, messages=messages)
    return res, cluster


@pytest.mark.parametrize("mtu", [MTU_STANDARD, MTU_JUMBO])
def test_bulk_stream_agrees_within_tolerance(mtu):
    """The fig4 bulk point: bandwidth within tolerance, conservation
    exact, and a big event reduction (the engine's reason to exist)."""
    res_off, cl_off = _stream(_cfg("off", mtu))
    res_auto, cl_auto = _stream(_cfg("auto", mtu))

    assert res_auto.nbytes_total == res_off.nbytes_total
    rel = abs(res_auto.bandwidth_mbps - res_off.bandwidth_mbps) / res_off.bandwidth_mbps
    assert rel < TOLERANCE

    # The flow engine really engaged, and only at protocol boundaries.
    flow = cl_auto.env.flow.counters
    assert flow["trains"] > 0 and flow["frames_batched"] > flow["trains"]
    assert cl_off.env.profiler.events_processed > \
        5 * cl_auto.env.profiler.events_processed

    # Frame conservation holds closed-form: every byte the sender's
    # module counted out arrived at the receiver's module.
    for cl in (cl_off, cl_auto):
        snap = cl.metrics.snapshot()
        assert snap["node0.clic.bytes_sent"] == snap["node1.clic.bytes_rx"]
        assert snap["node0.clic.pkts_tx"] == snap["node1.clic.pkts_rx"]
        assert snap["node0.nic0.tx_frames"] == snap["node1.nic0.rx_frames"]


def test_latency_point_agrees_within_tolerance():
    """The fig5/headline shape: a windowed pingpong's latency may move
    only within tolerance when the engine is armed (express acks change
    event granularity, never protocol behaviour)."""
    lat = {}
    for mode in ("off", "auto"):
        cluster = Cluster(_cfg(mode), protocols=("clic",))
        lat[mode] = pingpong(cluster, clic_pair(), 64_000, repeats=3,
                             warmup=1).one_way_ns
    assert abs(lat["auto"] - lat["off"]) / lat["off"] < TOLERANCE


def test_bonded_cluster_is_bit_identical():
    """Channel bonding has no flow routes, so ``auto`` must degrade to
    the exact engine with zero divergence — same clock, same events,
    same metrics, byte for byte."""
    results = {}
    for mode in ("off", "auto"):
        cfg = _cfg(mode)
        cfg = cfg.with_node(cfg.node.with_nic_count(2))
        res, cluster = _stream(cfg, nbytes=300_000, messages=3)
        if mode == "auto":  # installed but fully stood down
            assert cluster.env.flow is not None
            assert cluster.env.flow.counters["trains"] == 0
        results[mode] = (res.elapsed_ns, res.nbytes_total,
                         cluster.env.profiler.events_processed,
                         _snapshot(cluster))
    assert results["off"] == results["auto"]


def test_journey_tracing_is_bit_identical():
    """Journey tracing forces the exact path (per-frame identity must
    stay observable), so a traced ``auto`` run matches a traced ``off``
    run bit for bit."""
    from repro.obs import JourneyProbe, JourneyRecorder

    results = {}
    for mode in ("off", "auto"):
        cluster = Cluster(_cfg(mode), protocols=("clic",))
        recorder = JourneyRecorder(cluster.env)
        cluster.tracer.journeys = recorder
        probe = JourneyProbe.install(recorder)
        try:
            res = stream(cluster, clic_pair(), 300_000, messages=3)
        finally:
            probe.uninstall()
        if mode == "auto":
            assert cluster.env.flow.counters.get("trains", 0) == 0
            assert cluster.env.flow.counters.get("acks_express", 0) == 0
        results[mode] = (res.elapsed_ns, res.nbytes_total,
                         cluster.env.profiler.events_processed,
                         _snapshot(cluster), len(recorder))
    assert results["off"] == results["auto"]


def test_off_mode_never_installs_the_controller():
    cluster = Cluster(_cfg("off"), protocols=("clic",))
    assert cluster.env.flow is None


def test_auto_mode_survives_fault_onset_mid_flow():
    """A scheduled congestion spike in the middle of a bulk transfer:
    the engine must fall back to exact simulation for the disturbed
    span and re-engage after — with delivery still exactly-once."""
    from repro.faults import FaultPlan

    cfg = _cfg("auto")
    faults = FaultPlan.congestion_spike(2_000_000.0, 6_000_000.0,
                                        bandwidth_factor=4.0)
    cluster = Cluster(cfg, protocols=("clic",), faults=faults)
    res = stream(cluster, clic_pair(), 1_000_000, messages=8)
    assert res.nbytes_total == 8_000_000
    flow = cluster.env.flow.counters
    assert flow["trains"] > 0  # engaged outside the window
    assert flow.get("fallback_faults", 0) > 0  # stood down inside it
    snap = cluster.metrics.snapshot()
    assert snap["node0.clic.bytes_sent"] == snap["node1.clic.bytes_rx"]
