"""Tests for the unit helpers and configuration presets."""

import pytest

from repro import config
from repro.units import (
    bandwidth_mbps,
    kilobytes,
    KiB,
    megabytes,
    MiB,
    mbps,
    ms,
    ns,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    transfer_time_ns,
    us,
)


def test_time_conversions_roundtrip():
    assert us(1) == 1_000
    assert ms(1) == 1_000_000
    assert seconds(1) == 1_000_000_000
    assert to_us(us(42)) == 42
    assert to_ms(ms(3)) == 3
    assert to_seconds(seconds(2)) == 2
    assert ns(7) == 7.0


def test_size_helpers():
    assert KiB == 1024 and MiB == 1024 * 1024
    assert kilobytes(2) == 2_000
    assert megabytes(1.5) == 1_500_000


def test_bandwidth_math():
    # 1000 bytes in 8 us -> 1 Gb/s.
    assert bandwidth_mbps(1000, 8_000) == pytest.approx(1000.0)
    assert bandwidth_mbps(1000, 0) == 0.0
    assert transfer_time_ns(100e6, 100e6) == pytest.approx(1e9)
    with pytest.raises(ValueError):
        transfer_time_ns(1, 0)
    # mbps(): 1000 Mb/s = 0.125 bytes/ns
    assert mbps(1000) == pytest.approx(0.125)


def test_granada_preset_matches_paper_constants():
    cfg = config.granada2003()
    # 0.65 us syscall round trip.
    k = cfg.node.kernel
    assert (k.syscall_enter_ns + k.syscall_exit_ns) == pytest.approx(650)
    # 33 MHz / 32-bit PCI.
    assert cfg.node.pci.clock_hz == 33e6
    assert cfg.node.pci.width_bytes == 4
    # 1.5 GHz CPU, GigE link.
    assert cfg.node.cpu.freq_hz == 1.5e9
    assert cfg.link.rate_bps == 1e9
    # Defaults: jumbo + 0-copy + coalescing (the paper's best config).
    assert cfg.node.nic.mtu == config.MTU_JUMBO
    assert cfg.node.clic.zero_copy
    assert cfg.node.nic.coalescing_enabled


def test_preset_knob_helpers():
    cfg = config.granada2003(mtu=1500, zero_copy=False)
    assert cfg.node.nic.mtu == 1500
    assert not cfg.node.clic.zero_copy
    node = cfg.node.with_coalescing(False).with_direct_rx(True).with_nic_count(2)
    assert not node.nic.coalescing_enabled
    assert node.kernel.direct_rx_dispatch
    assert node.nic_count == 2
    node = node.with_fragmentation_offload(True)
    assert node.nic.supports_fragmentation


def test_pci_effective_bandwidth_formula():
    p = config.PciParams()
    assert p.effective_bw_Bps == pytest.approx(33e6 * 4 * 0.82)
    fast = config.pci_66mhz_64bit()
    assert fast.effective_bw_Bps >= 3.9 * p.effective_bw_Bps


def test_effective_mtu_respects_jumbo_support():
    nic = config.NicParams(mtu=9000, supports_jumbo=False)
    assert nic.effective_mtu() == 1500
    nic = config.NicParams(mtu=9000, supports_jumbo=True)
    assert nic.effective_mtu() == 9000
    nic = config.NicParams(mtu=1500)
    assert nic.effective_mtu() == 1500


def test_configs_are_frozen():
    cfg = config.granada2003()
    with pytest.raises(Exception):
        cfg.node.nic.mtu = 1  # type: ignore[misc]


def test_clic_window_below_rx_ring():
    """The flow-control invariant DESIGN.md documents: a full window of
    frames must fit in the receiver's rx ring."""
    cfg = config.granada2003()
    assert cfg.node.clic.window_frames <= cfg.node.nic.rx_ring_slots
