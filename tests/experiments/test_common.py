"""Tests for the experiment helpers (shape checks, sweeps)."""

import pytest

from repro.config import granada2003
from repro.experiments.common import (
    ShapeCheckFailure,
    check,
    full_sizes,
    quick_sizes,
    sweep_pingpong,
    sweep_stream,
)
from repro.workloads import clic_pair


def test_check_passes_silently():
    check(True, "fine")


def test_check_raises_with_claim_text():
    with pytest.raises(ShapeCheckFailure, match="jumbo beats"):
        check(False, "jumbo beats standard", "599 vs 601")


def test_check_detail_included():
    with pytest.raises(ShapeCheckFailure, match="599 vs 601"):
        check(False, "claim", "599 vs 601")


def test_size_grids():
    q = quick_sizes()
    f = full_sizes()
    assert q[0] >= 10 and q[-1] == 1_000_000
    assert f[0] == 10 and f[-1] == 10_000_000
    assert len(f) > len(q)
    assert f == sorted(f)


def test_sweep_pingpong_produces_series():
    series = sweep_pingpong("t", granada2003, clic_pair, sizes=[1_000, 100_000])
    assert series.sizes == [1_000, 100_000]
    assert series.mbps[1] > series.mbps[0]


def test_sweep_stream_wraps_as_series():
    series = sweep_stream("t", granada2003, clic_pair, sizes=[10_000], messages=4)
    assert series.sizes == [10_000]
    assert series.asymptote() > 0
    # Stream "rtt" is synthesized as 2x the per-message time so the
    # bandwidth helper (n / (rtt/2)) reports stream throughput.
    point = series.points[0]
    assert point.bandwidth_mbps == pytest.approx(
        10_000 * 8 / (point.rtt_ns / 2) * 1e9 / 1e6 / 1e0, rel=1e-6
    )
