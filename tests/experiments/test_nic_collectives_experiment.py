"""Smoke + shape-check tests for EXT-NICCOLL (collectives-scaling).

The full sweep runs in CI's perf job; here we run the whole pipeline —
sweep, histograms, crossover curves, traced critical path, shape
checks — at the smallest size pair that still exercises every claim,
and prove the shape checks actually bite on doctored data.
"""

import copy

import pytest

from repro.experiments import nic_collectives
from repro.experiments.common import ShapeCheckFailure


@pytest.fixture(scope="module")
def result():
    # (2, 16) is the smallest pair where the sub-linear barrier claim
    # is meaningful (factor 8 between sizes); everything stays on the
    # single switch so this is quick enough for the unit loop.
    saved = nic_collectives.SIZES_QUICK
    nic_collectives.SIZES_QUICK = (2, 16)
    try:
        yield nic_collectives.run(quick=True, jobs=1)
    finally:
        nic_collectives.SIZES_QUICK = saved


def test_experiment_runs_with_shape_checks(result):
    assert result["id"] == "EXT-NICCOLL"
    assert result["sizes"] == [2, 16]
    assert "host vs NIC collectives" in result["report"]
    assert "nic 0 syscalls / 0 IRQs / 0 BHs" in result["report"]


def test_crossover_curves_cover_every_point(result):
    assert set(result["crossover"]) == {
        "barrier/0B", "bcast/8192B", "allreduce/64B", "allreduce/8192B"}
    # Latency-bound points win immediately; the bandwidth-bound
    # allreduce never does — that asymmetry is the experiment's result.
    assert result["crossover"]["barrier/0B"]["nic_wins_at"] == 2
    assert result["crossover"]["allreduce/8192B"]["nic_wins_at"] is None


def test_percentiles_recorded_per_cell(result):
    cell = result["percentiles"]["barrier/0B/nic/16"]
    assert cell["p50_us"] <= cell["p99_us"] <= cell["max_us"]


def test_shape_checks_bite_on_doctored_data(result):
    broken = copy.deepcopy(result)
    # A NIC barrier slower than the host must fail the latency claim.
    broken["times"]["barrier/0B"]["nic"]["16"] = (
        broken["times"]["barrier/0B"]["host"]["16"] * 2)
    with pytest.raises(ShapeCheckFailure, match="latency-bound"):
        nic_collectives.shape_checks(broken)

    broken = copy.deepcopy(result)
    broken["trace"]["nic"]["syscall_spans"] = 3
    with pytest.raises(ShapeCheckFailure, match="zero times"):
        nic_collectives.shape_checks(broken)
