"""Tests for the experiment registry and the fast experiments end-to-end.

The heavyweight sweeps (fig4/fig5/fig6/headline) run in the benchmark
suite; here we cover the registry mechanics and the experiments cheap
enough for the unit-test loop — including their shape checks, which
encode the paper's claims.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


def test_registry_lists_all_paper_artifacts():
    assert set(EXPERIMENTS) == {
        "fig4", "fig5", "fig6", "fig7",
        "headline", "comparison", "interrupts", "ablations", "breakdown",
        "collectives", "collectives-scaling", "fe2001", "resilience",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


def test_fig7_runs_with_shape_checks():
    result = run_experiment("fig7")
    assert result["id"] == "FIG7"
    assert "driver interrupt" in result["report"]
    # Paper's ~15 us stage.
    stages = dict(result["a"]["stages"])
    assert 10 <= stages["receiver: driver interrupt (NIC->system copy)"] <= 25


def test_comparison_runs_with_shape_checks():
    result = run_experiment("comparison")
    assert result["survives_loss"]["CLIC"] is True
    assert result["survives_loss"]["GAMMA"] is False
    assert result["latency_us"]["GAMMA"] < result["latency_us"]["CLIC"]


def test_interrupts_runs_with_shape_checks():
    result = run_experiment("interrupts")
    cells = result["cells"]
    assert cells["1500/False"]["irqs"] > cells["1500/True"]["irqs"]


def test_cli_main_runs_one_experiment(capsys):
    from repro.experiments.registry import main

    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "FIG7" in out


def test_cli_rejects_unknown(capsys):
    from repro.experiments.registry import main

    with pytest.raises(SystemExit):
        main(["nope"])
