"""``--jobs N`` must not change what the battery measures.

Runs a two-experiment battery through the real CLI twice — serial and
``--jobs 2`` — and requires the JSON artifacts to be byte-identical,
*including* the aggregated profiler tallies (worker-side snapshots are
folded back into the parent sink).
"""

import json

import pytest

from repro.experiments.registry import main


def _battery(tmp_path, tag, extra):
    path = tmp_path / f"batch-{tag}.json"
    assert main(["fig7", "comparison", *extra, "--json", str(path)]) == 0
    return json.loads(path.read_text())


def test_battery_jobs2_byte_identical(tmp_path, capsys):
    serial = _battery(tmp_path, "serial", [])
    parallel = _battery(tmp_path, "jobs2", ["--jobs", "2"])
    capsys.readouterr()  # drop the printed reports
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    assert [run["experiment"] for run in parallel["runs"]] == ["fig7", "comparison"]


@pytest.mark.perf
def test_resilience_jobs2_fleet_fold_byte_identical(tmp_path, capsys):
    """The fleet-wide digest fold happens in the parent, in submission
    order, so a ``--jobs 2`` resilience sweep — cells fanned out over a
    pool, digests folded back with ``merge_from`` — must be
    byte-identical to the serial run, global percentiles included."""

    def run(tag, extra):
        path = tmp_path / f"res-{tag}.json"
        assert main(["resilience", *extra, "--json", str(path)]) == 0
        return json.loads(path.read_text())

    serial = run("serial", [])
    parallel = run("jobs2", ["--jobs", "2"])
    capsys.readouterr()
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    fleet = parallel["result"]["fleet"]
    assert fleet["syscall_ns"]["count"] > 0
