"""``--jobs N`` must not change what the battery measures.

Runs a two-experiment battery through the real CLI twice — serial and
``--jobs 2`` — and requires the JSON artifacts to be byte-identical,
*including* the aggregated profiler tallies (worker-side snapshots are
folded back into the parent sink).
"""

import json

from repro.experiments.registry import main


def _battery(tmp_path, tag, extra):
    path = tmp_path / f"batch-{tag}.json"
    assert main(["fig7", "comparison", *extra, "--json", str(path)]) == 0
    return json.loads(path.read_text())


def test_battery_jobs2_byte_identical(tmp_path, capsys):
    serial = _battery(tmp_path, "serial", [])
    parallel = _battery(tmp_path, "jobs2", ["--jobs", "2"])
    capsys.readouterr()  # drop the printed reports
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    assert [run["experiment"] for run in parallel["runs"]] == ["fig7", "comparison"]
