"""Tests for the Fast Ethernet 2001 preset and baseline experiment."""

import pytest

from repro.cluster import Cluster
from repro.config import fastethernet2001
from repro.protocols.clic import ClicEndpoint
from repro.workloads import clic_pair, pingpong


def test_fe_preset_shape():
    cfg = fastethernet2001()
    assert cfg.link.rate_bps == 100e6
    assert cfg.node.nic.effective_mtu() == 1500
    assert not cfg.node.nic.supports_sg
    assert not cfg.node.clic.zero_copy
    assert not cfg.node.nic.coalescing_enabled


def test_fe_clic_delivery_works():
    cluster = Cluster(fastethernet2001())

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 50_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    p0.run(a)
    done = p1.run(b)
    assert cluster.env.run(done) == 50_000
    # First-generation CLIC: every fragment was staged (1-copy).
    assert cluster.nodes[0].nics[0].counters.get("tx_zero_copy") == 0


def test_fe_latency_higher_than_gige():
    """A 1500 B exchange takes much longer on the 10x slower wire."""
    from repro.config import granada2003

    fe = pingpong(Cluster(fastethernet2001()), clic_pair(), 1400, repeats=1, warmup=1)
    ge = pingpong(Cluster(granada2003()), clic_pair(), 1400, repeats=1, warmup=1)
    assert fe.one_way_ns > ge.one_way_ns
    # The gap is dominated by serialization: ~112 us of extra wire time
    # per direction (two serializations through the switch).
    assert fe.one_way_ns - ge.one_way_ns > 150_000


def test_fe_experiment_shape_checks():
    from repro.experiments import run_experiment

    result = run_experiment("fe2001")
    assert result["id"] == "FE-2001"
    assert result["cells"]["FE/CLIC"]["mbps"] > result["cells"]["FE/TCP"]["mbps"]
