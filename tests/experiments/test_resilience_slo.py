"""Resilience declared contracts: adversarial SLOs, watchdog, fleet fold."""

import json

import pytest

from repro.experiments.resilience import (
    ADVERSARIAL_KINDS,
    _adversarial_run,
    _cell,
    adversarial_slo,
)
from repro.obs import Histogram, MetricsRegistry, SLOSpec, evaluate


def test_adversarial_slo_specs_are_data():
    for kind in ADVERSARIAL_KINDS:
        spec = adversarial_slo(kind, messages=40)
        assert spec.name == f"adversarial.{kind}"
        assert SLOSpec.from_json(spec.to_json()) == spec
        names = [o.name for o in spec.objectives]
        assert names[0] == "delivered"
    overload = adversarial_slo("overload", 40)
    by_name = {o.name: o for o in overload.objectives}
    assert by_name["loss-budget"].kind == "budget"
    assert by_name["loss-budget"].threshold == 0.0


@pytest.mark.parametrize("kind", ADVERSARIAL_KINDS)
def test_adversarial_runs_meet_declared_contract(kind):
    out = _adversarial_run(kind, nbytes=4096, messages=40)
    card = out["slo"]
    assert card["ok"], f"{kind}: violated {card['violations']}"
    # Scoring the stored scorecard's spec again reproduces it.
    again = evaluate(adversarial_slo(kind, 40), out)
    assert again["objectives"] == card["objectives"]
    assert out["health_summary"]["schema"] == "repro.health/1"


def test_overload_watchdog_flags_pause_storm():
    out = _adversarial_run("overload", nbytes=4096, messages=40)
    storms = [e for e in out["health"]
              if e["kind"] == "storm" and "pause" in e["rule"]]
    assert storms, "overload run should trip the pause-storm rule"
    assert all(e["severity"] in ("warning", "critical") for e in storms)
    # Pure observer: the degraded counters still satisfy the contract.
    assert out["degraded"]["overrun_drops"] == 0.0


def test_cell_digest_folds_to_fleet_percentiles():
    a = _cell("clic", "uniform", 0.0, nbytes=2048, messages=2)
    b = _cell("clic", "uniform", 0.02, nbytes=2048, messages=2)
    for cell in (a, b):
        json.dumps(cell["digest"])  # pool-safe plain JSON
    fleet = MetricsRegistry()
    fleet.merge_from(a["digest"])
    fleet.merge_from(b["digest"])
    syscall = Histogram("kernel.syscall_ns")
    merged_names = []
    for name, inst in fleet.items():
        if name.endswith("kernel.syscall_ns"):
            merged_names.append(name)
            syscall.merge(inst)
    assert merged_names, "cells should carry per-node syscall histograms"
    assert syscall.count == sum(
        entry["count"]
        for cell in (a, b)
        for name, entry in cell["digest"].items()
        if name.endswith("kernel.syscall_ns"))
    assert syscall.p999 >= syscall.p50 > 0.0
