"""Tests for tracing, counters, busy tracking, and RNG streams."""

import pytest

from repro.sim import BusyTracker, Counters, IntervalStats, RngStreams, Trace


def test_trace_disabled_records_nothing():
    t = Trace(enabled=False)
    t.record(1.0, "src", "ev", x=1)
    assert len(t) == 0


def test_trace_filter_by_source_and_event():
    t = Trace(enabled=True)
    t.record(1, "a", "x", k=1)
    t.record(2, "a", "y")
    t.record(3, "b", "x")
    assert len(t.filter(source="a")) == 2
    assert len(t.filter(event="x")) == 2
    assert len(t.filter(source="a", event="x")) == 1
    assert t.matching(k=1)[0].time == 1
    t.clear()
    assert len(t) == 0


def test_trace_record_repr():
    t = Trace(enabled=True)
    t.record(1500, "node0", "stage", pkt=7)
    assert "node0" in repr(t.records[0])
    assert "pkt=7" in repr(t.records[0])


def test_counters_accumulate_and_snapshot():
    c = Counters()
    c.add("x")
    c.add("x", 2)
    c.add("y", 0.5)
    assert c["x"] == 3
    assert c.get("missing") == 0
    snap = c.snapshot()
    assert snap == {"x": 3, "y": 0.5}
    c.reset()
    assert c.get("x") == 0


def test_busy_tracker_integrates_intervals():
    b = BusyTracker()
    b.acquire(0)
    b.release(10)
    b.acquire(20)
    b.release(25)
    assert b.total_busy == 15
    assert b.busy_time(100) == 15


def test_busy_tracker_reentrant_counts_once():
    b = BusyTracker()
    b.acquire(0)
    b.acquire(5)  # overlap
    b.release(10)
    b.release(20)
    assert b.total_busy == 20


def test_busy_tracker_open_interval_and_marks():
    b = BusyTracker()
    b.acquire(0)
    assert b.busy_time(30) == 30
    b.mark(30)
    b.release(40)
    assert b.utilization_since_mark(50) == pytest.approx(0.5)
    assert b.utilization_since_mark(30) == 0.0


def test_busy_tracker_unbalanced_release_raises():
    b = BusyTracker()
    with pytest.raises(RuntimeError):
        b.release(1)


def test_interval_stats():
    s = IntervalStats()
    assert s.mean == 0.0
    for v in (1.0, 3.0, 2.0):
        s.observe(v)
    d = s.as_dict()
    assert d["count"] == 3
    assert d["mean"] == pytest.approx(2.0)
    assert d["min"] == 1.0 and d["max"] == 3.0


def test_rng_streams_deterministic_and_independent():
    a1 = RngStreams(7).stream("loss")
    a2 = RngStreams(7).stream("loss")
    b = RngStreams(7).stream("jitter")
    seq1 = a1.random(5).tolist()
    seq2 = a2.random(5).tolist()
    seqb = b.random(5).tolist()
    assert seq1 == seq2  # same seed+name -> identical
    assert seq1 != seqb  # different name -> independent


def test_rng_stream_cached_not_restarted():
    rngs = RngStreams(1)
    s = rngs.stream("x")
    first = s.random()
    again = rngs.stream("x").random()
    assert first != again  # same generator object advancing, not reset


def test_rng_spawn_children_differ_from_parent():
    parent = RngStreams(3)
    child = parent.spawn("node0")
    other = parent.spawn("node1")
    assert child.seed != other.seed
    assert "node0" not in repr(parent)
    p = parent.stream("s").random()
    c = child.stream("s").random()
    assert p != c
