"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)
        assert env.now == 100
        yield env.timeout(50)
        return env.now

    p = env.process(proc(env))
    result = env.run(p)
    assert result == 150
    assert env.now == 150


def test_timeout_value():
    env = Environment()

    def proc(env):
        value = yield env.timeout(10, value="hello")
        return value

    assert env.run(env.process(proc(env))) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time():
    env = Environment()
    log = []

    def ticker(env):
        while True:
            yield env.timeout(10)
            log.append(env.now)

    env.process(ticker(env))
    env.run(until=35)
    assert log == [10, 20, 30]
    assert env.now == 35


def test_same_time_events_fifo_order():
    env = Environment()
    log = []

    def worker(env, name):
        yield env.timeout(5)
        log.append(name)

    for name in "abc":
        env.process(worker(env, name))
    env.run()
    assert log == ["a", "b", "c"]


def test_process_waits_for_process():
    env = Environment()

    def child(env):
        yield env.timeout(30)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    assert env.run(env.process(parent(env))) == (30, 42)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env):
        value = yield ev
        return (env.now, value)

    def firer(env):
        yield env.timeout(25)
        ev.succeed("done")

    p = env.process(waiter(env))
    env.process(firer(env))
    assert env.run(p) == (25, "done")


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env):
        try:
            yield ev
        except RuntimeError as exc:
            return str(exc)

    def firer(env):
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    p = env.process(waiter(env))
    env.process(firer(env))
    assert env.run(p) == "boom"


def test_unhandled_failure_propagates_out_of_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("oops")

    env.process(bad(env))
    with pytest.raises(ValueError, match="oops"):
        env.run()


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 17

    p = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run(p)


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            return (env.now, intr.cause)

    def attacker(env, target):
        yield env.timeout(40)
        target.interrupt("why not")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    assert env.run(v) == (40, "why not")


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        return 1
        yield  # pragma: no cover

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    """After an interrupt the process can wait again for the original time."""
    env = Environment()

    def victim(env):
        deadline = env.now + 100
        while True:
            try:
                yield env.timeout(deadline - env.now)
                return env.now
            except Interrupt:
                continue

    def pest(env, target):
        for _ in range(3):
            yield env.timeout(20)
            target.interrupt()

    v = env.process(victim(env))
    env.process(pest(env, v))
    assert env.run(v) == 100


def test_any_of_triggers_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(20, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(env.process(proc(env))) == (10, ["fast"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, value=1)
        t2 = env.timeout(20, value=2)
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(env.process(proc(env))) == (20, [1, 2])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        results = yield env.all_of([])
        return results

    assert env.run(env.process(proc(env))) == {}


def test_run_until_event_returns_its_value():
    env = Environment()
    assert env.run(env.timeout(5, value="v")) == "v"
    assert env.now == 5


def test_run_until_past_event_queue_drain_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.process(iter_timeout(env))
    with pytest.raises(SimulationError):
        env.run(ev)


def iter_timeout(env):
    yield env.timeout(1)


def test_peek_and_step():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.step()
    assert env.now == 7
    assert env.peek() == float("inf")


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("k")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "caught"

    assert env.run(env.process(parent(env))) == "caught"


def test_clock_is_monotonic_across_many_processes():
    env = Environment()
    times = []

    def worker(env, delay):
        yield env.timeout(delay)
        times.append(env.now)
        yield env.timeout(delay * 2)
        times.append(env.now)

    for d in (5, 3, 11, 7, 2):
        env.process(worker(env, d))
    env.run()
    assert times == sorted(times)
