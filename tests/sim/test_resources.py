"""Unit tests for queuing resources and stores."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
    Store,
)


def test_resource_serializes_users():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, name):
        with res.request() as req:
            yield req
            log.append((name, "in", env.now))
            yield env.timeout(10)
        log.append((name, "out", env.now))

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.run()
    assert log == [
        ("a", "in", 0),
        ("a", "out", 10),
        ("b", "in", 10),
        ("b", "out", 20),
    ]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def user(env, name):
        with res.request() as req:
            yield req
            yield env.timeout(10)
        done.append((name, env.now))

    for name in "abc":
        env.process(user(env, name))
    env.run()
    assert done == [("a", 10), ("b", 10), ("c", 20)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_via_context_manager_even_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad(env):
        with res.request() as req:
            yield req
            raise RuntimeError("die")

    def good(env):
        with res.request() as req:
            yield req
            return env.now

    p1 = env.process(bad(env))
    p2 = env.process(good(env))
    with pytest.raises(RuntimeError):
        env.run()
    env2 = Environment()
    # rebuild in a fresh env where the exception is caught by a parent
    res2 = Resource(env2, capacity=1)

    def bad2(env):
        with res2.request() as req:
            yield req
            raise RuntimeError("die")

    def parent(env):
        try:
            yield env.process(bad2(env))
        except RuntimeError:
            pass
        with res2.request() as req:
            yield req
            return "acquired-after-crash"

    assert env2.run(env2.process(parent(env2))) == "acquired-after-crash"
    del p1, p2


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=5) as req:
            yield req
            yield env.timeout(100)

    def contender(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(contender(env, "low", 10, 1))
    env.process(contender(env, "high", 0, 2))
    env.process(contender(env, "mid", 5, 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_preemptive_resource_evicts_lower_priority():
    env = Environment()
    cpu = PreemptiveResource(env, capacity=1)
    log = []

    def user_task(env):
        req = cpu.request(priority=10, preempt=False)
        yield req
        try:
            yield env.timeout(100)
            log.append(("user-done", env.now))
            cpu.release(req)
        except Interrupt as intr:
            assert isinstance(intr.cause, Preempted)
            log.append(("user-preempted", env.now))

    def irq(env):
        yield env.timeout(30)
        with cpu.request(priority=0, preempt=True) as req:
            yield req
            log.append(("irq-run", env.now))
            yield env.timeout(20)
        log.append(("irq-done", env.now))

    env.process(user_task(env))
    env.process(irq(env))
    env.run()
    assert ("user-preempted", 30) in log
    assert ("irq-run", 30) in log
    assert ("irq-done", 50) in log


def test_preempted_cause_records_usage_since():
    env = Environment()
    cpu = PreemptiveResource(env, capacity=1)
    seen = {}

    def victim(env):
        req = cpu.request(priority=10, preempt=False)
        yield req
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            seen["cause"] = intr.cause

    def bully(env):
        yield env.timeout(40)
        with cpu.request(priority=0, preempt=True) as req:
            yield req
            yield env.timeout(1)

    env.process(victim(env))
    env.process(bully(env))
    env.run()
    cause = seen["cause"]
    assert isinstance(cause, Preempted)
    assert cause.usage_since == 0
    assert cause.resource is cpu


def test_equal_priority_does_not_preempt():
    env = Environment()
    cpu = PreemptiveResource(env, capacity=1)
    log = []

    def one(env):
        with cpu.request(priority=5, preempt=False) as req:
            yield req
            yield env.timeout(50)
            log.append(("one", env.now))

    def two(env):
        yield env.timeout(10)
        with cpu.request(priority=5, preempt=True) as req:
            yield req
            log.append(("two", env.now))

    env.process(one(env))
    env.process(two(env))
    env.run()
    assert log == [("one", 50), ("two", 50)]


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(10)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(0, 10), (1, 20), (2, 30)]


def test_store_capacity_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(100)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0) in log
    assert ("put-b", 100) in log


def test_store_filter_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put({"tag": 1, "v": "x"})
        yield store.put({"tag": 2, "v": "y"})

    def consumer(env):
        item = yield store.get(filter=lambda m: m["tag"] == 2)
        return item["v"]

    env.process(producer(env))
    p = env.process(consumer(env))
    assert env.run(p) == "y"


def test_store_filter_leaves_other_items():
    env = Environment()
    store = Store(env)

    def run(env):
        yield store.put("a")
        yield store.put("b")
        first = yield store.get(filter=lambda m: m == "b")
        second = yield store.get()
        return (first, second)

    assert env.run(env.process(run(env))) == ("b", "a")


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def fill(env):
        yield store.put(7)

    env.process(fill(env))
    env.run()
    assert store.try_get() == 7
    assert store.try_get() is None


def test_store_len():
    env = Environment()
    store = Store(env)

    def fill(env):
        yield store.put(1)
        yield store.put(2)

    env.process(fill(env))
    env.run()
    assert len(store) == 2
