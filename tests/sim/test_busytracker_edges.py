"""BusyTracker edge cases: unmatched release, re-entrancy, zero spans."""

import pytest

from repro.sim import BusyTracker


def test_release_without_acquire_names_the_timestamp():
    """The error must say *when* the bogus release happened — that is the
    only clue when a generator tears down mid-simulation."""
    tracker = BusyTracker()
    with pytest.raises(RuntimeError, match=r"t=12,500 ns"):
        tracker.release(12_500.0)


def test_release_after_balanced_pair_still_raises():
    tracker = BusyTracker()
    tracker.acquire(0.0)
    tracker.release(10.0)
    with pytest.raises(RuntimeError, match="without matching acquire"):
        tracker.release(20.0)


def test_reentrant_acquire_release_counts_busy_once():
    """Overlapping busy intervals from several users integrate once."""
    tracker = BusyTracker()
    tracker.acquire(0.0)
    tracker.acquire(5.0)   # nested: device already busy
    tracker.release(8.0)   # inner release: still busy
    assert tracker.total_busy == 0.0
    assert tracker.busy_time(9.0) == 9.0  # open interval counts live
    tracker.release(10.0)  # outermost release closes the interval
    assert tracker.total_busy == 10.0
    assert tracker.busy_time(15.0) == 10.0


def test_utilization_zero_span_window():
    """A window of zero (or negative) width reports 0.0, not a division
    error — this happens when utilization is sampled at the mark time."""
    tracker = BusyTracker()
    tracker.acquire(0.0)
    tracker.mark(100.0)
    assert tracker.utilization_since_mark(100.0) == 0.0
    assert tracker.utilization_since_mark(90.0) == 0.0  # clock skew guard
    tracker.release(200.0)
    assert tracker.utilization_since_mark(200.0) == pytest.approx(1.0)


def test_utilization_window_with_partial_busy():
    tracker = BusyTracker()
    tracker.mark(0.0)
    tracker.acquire(25.0)
    tracker.release(75.0)
    assert tracker.utilization_since_mark(100.0) == pytest.approx(0.5)
