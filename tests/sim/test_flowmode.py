"""Unit tests for the hybrid flow/packet eligibility oracle.

Everything the controller consults is duck-typed, so these tests drive
it with minimal stubs and check one boundary per test: each fallback
reason, the batch-size clamp, and the express-ack gate.
"""

import pytest

from repro.sim.flowmode import FlowModeController, FlowRoute


class _Window:
    def __init__(self, start_ns, end_ns):
        self.start_ns = start_ns
        self.end_ns = end_ns

    def covers(self, now):
        return self.start_ns <= now < self.end_ns


class _Faults:
    def __init__(self, quiet=True):
        self._quiet = quiet

    def quiet_over(self, start, end):
        return self._quiet


class _Counters:
    def __init__(self):
        self.values = {}

    def add(self, name, value=1):
        self.values[name] = self.values.get(name, 0) + value


class _Channel:
    def __init__(self, idle=True, faults=None):
        self.idle = idle
        self.faults = faults
        self.counters = _Counters()


class _Port:
    def __init__(self, occupancy=0, blackouts=()):
        self.occupancy = occupancy
        self.blackouts = blackouts


class _Nic:
    def __init__(self, headroom=64, mac="nic"):
        self._headroom = headroom
        self.mac = mac
        self.received = []
        self.counters = _Counters()

    def rx_headroom(self):
        return self._headroom

    def receive_frame(self, frame):
        self.received.append(frame)


class _Sender:
    def __init__(self, window=64, in_flight=0, failed=False,
                 retransmitting=False):
        self.window = window
        self.in_flight = in_flight
        self.failed = failed
        self.retransmitting = retransmitting


class _Frame:
    def __init__(self, train_frames, payload_bytes):
        self.train_frames = train_frames
        self.payload_bytes = payload_bytes


def _route(**kw):
    defaults = dict(up=_Channel(), down=_Channel(), port=_Port(),
                    src_nic=_Nic(mac="src"), dst_nic=_Nic(mac="dst"),
                    rx_budget=16, dst_coalescing=True)
    defaults.update(kw)
    return FlowRoute(**defaults)


def _controller(**kw):
    ctl = FlowModeController(**kw)
    return ctl


def _register(ctl, route):
    ctl.register_route(0, 1, route)
    return route


def plan(ctl, sender=None, remaining=32, now=0.0):
    return ctl.plan_train(0, 1, sender or _Sender(), remaining, now)


def test_controller_validates_parameters():
    with pytest.raises(ValueError):
        FlowModeController(min_train=1)
    with pytest.raises(ValueError):
        FlowModeController(min_train=8, max_train=4)
    with pytest.raises(ValueError):
        FlowModeController(horizon_ns=0)


def test_steady_state_train_is_granted_and_counted():
    ctl = _controller()
    _register(ctl, _route())
    k = plan(ctl)
    assert k == 16  # min(remaining=32, window_free=64, max_train=16, budget=16)
    assert ctl.counters["trains"] == 1
    assert ctl.counters["frames_batched"] == 16


def test_window_edge_fallbacks():
    ctl = _controller()
    _register(ctl, _route())
    assert plan(ctl, remaining=3) == 0  # fewer fragments than min_train
    assert plan(ctl, sender=_Sender(window=64, in_flight=62)) == 0
    assert ctl.counters["fallback_window_edge"] == 2


def test_recovery_fallback():
    ctl = _controller()
    _register(ctl, _route())
    assert plan(ctl, sender=_Sender(retransmitting=True)) == 0
    assert plan(ctl, sender=_Sender(failed=True)) == 0
    assert ctl.counters["fallback_recovery"] == 2


def test_topology_fallback_without_route():
    ctl = _controller()
    assert plan(ctl) == 0
    assert ctl.counters["fallback_topology"] == 1


def test_fault_window_inside_horizon_forces_exact():
    ctl = _controller(horizon_ns=1_000_000.0)
    _register(ctl, _route(down=_Channel(faults=_Faults(quiet=False))))
    assert plan(ctl) == 0
    assert ctl.counters["fallback_faults"] == 1


def test_switch_contention_fallbacks():
    ctl = _controller()
    _register(ctl, _route(port=_Port(occupancy=2)))
    assert plan(ctl) == 0
    ctl2 = _controller(horizon_ns=1_000_000.0)
    _register(ctl2, _route(port=_Port(blackouts=(_Window(500_000, 600_000),))))
    assert plan(ctl2, now=0.0) == 0
    assert ctl.counters["fallback_switch_contention"] == 1
    assert ctl2.counters["fallback_switch_contention"] == 1
    # ... but a blackout entirely beyond the horizon does not block.
    ctl3 = _controller(horizon_ns=1_000_000.0)
    _register(ctl3, _route(port=_Port(blackouts=(_Window(2_000_000, 3_000_000),))))
    assert plan(ctl3, now=0.0) > 0


def test_receiver_side_fallbacks():
    ctl = _controller()
    _register(ctl, _route(dst_coalescing=False))
    assert plan(ctl) == 0
    assert ctl.counters["fallback_coalescing_off"] == 1

    ctl2 = _controller()
    route = _register(ctl2, _route())
    route.stash_depth = lambda: 3
    assert plan(ctl2) == 0
    assert ctl2.counters["fallback_reorder_stash"] == 1

    ctl3 = _controller()
    _register(ctl3, _route(dst_nic=_Nic(headroom=2)))
    assert plan(ctl3) == 0
    assert ctl3.counters["fallback_rx_ring"] == 1


def test_train_size_clamps():
    ctl = _controller(min_train=4, max_train=16)
    _register(ctl, _route(rx_budget=8))
    assert plan(ctl, remaining=100) == 8  # rx budget clamps
    ctl2 = _controller(min_train=4, max_train=16)
    _register(ctl2, _route(dst_nic=_Nic(headroom=5)))
    assert plan(ctl2, remaining=100) == 5  # ring headroom clamps
    ctl3 = _controller(min_train=4, max_train=16)
    _register(ctl3, _route())
    assert plan(ctl3, remaining=100,
                sender=_Sender(window=64, in_flight=57)) == 7  # window clamps


def test_hop_clear_requires_idle_path():
    assert _route().hop_clear()
    assert not _route(up=_Channel(idle=False)).hop_clear()
    assert not _route(down=_Channel(idle=False)).hop_clear()
    assert not _route(port=_Port(occupancy=1)).hop_clear()


def test_complete_hop_balances_conservation_counters():
    switch_counters = _Counters()
    route = _route(switch_counters=switch_counters)
    frame = _Frame(train_frames=8, payload_bytes=8 * 1500)
    route.complete_hop(frame)
    for channel in (route.up, route.down):
        assert channel.counters.values["frames_offered"] == 8
        assert channel.counters.values["frames"] == 8
        assert channel.counters.values["bytes"] == 8 * 1500
    assert switch_counters.values["forwarded"] == 8
    assert route.dst_nic.received == [frame]


def test_hop_route_is_keyed_by_nic_and_mac():
    ctl = _controller()
    route = _register(ctl, _route())
    assert ctl.hop_route(route.src_nic, "dst") is route
    assert ctl.hop_route(route.src_nic, "elsewhere") is None
    assert ctl.hop_route(route.dst_nic, "dst") is None


def test_express_ack_requires_quiet_reverse_path():
    ctl = _controller()
    route = _register(ctl, _route())
    route.deliver_ack = lambda cum: None
    assert ctl.express_ack_route(0, 1, now=0.0) is route
    assert ctl.counters["acks_express"] == 1
    # No deliver_ack wired -> exact.
    ctl2 = _controller()
    _register(ctl2, _route())
    assert ctl2.express_ack_route(0, 1, now=0.0) is None
    # Busy wire -> exact.
    ctl3 = _controller()
    r3 = _register(ctl3, _route(up=_Channel(idle=False)))
    r3.deliver_ack = lambda cum: None
    assert ctl3.express_ack_route(0, 1, now=0.0) is None
    # Fault model not provably quiet -> exact.
    ctl4 = _controller()
    r4 = _register(ctl4, _route(up=_Channel(faults=_Faults(quiet=False))))
    r4.deliver_ack = lambda cum: None
    assert ctl4.express_ack_route(0, 1, now=0.0) is None
    # Unknown route -> exact.
    assert ctl.express_ack_route(1, 0, now=0.0) is None
    for c in (ctl2, ctl3, ctl4):
        assert c.counters["acks_exact"] == 1
