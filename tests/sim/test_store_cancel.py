"""Tests for store get-cancellation (used by timeout-guarded receives)."""

from repro.sim import Environment, Store


def test_cancelled_get_does_not_steal_items():
    env = Environment()
    store = Store(env)
    got = []

    def impatient(env):
        get = store.get()
        result = yield env.any_of([get, env.timeout(10)])
        if get not in result:
            get.cancel()
            got.append("gave-up")
        else:
            got.append(result[get])

    def patient(env):
        item = yield store.get()
        got.append(item)

    def producer(env):
        yield env.timeout(50)
        yield store.put("thing")

    env.process(impatient(env))
    env.process(patient(env))
    env.process(producer(env))
    env.run()
    assert got == ["gave-up", "thing"]


def test_cancel_after_trigger_is_noop():
    env = Environment()
    store = Store(env)

    def run(env):
        yield store.put("x")
        get = store.get()
        value = yield get
        get.cancel()  # already satisfied: harmless
        return value

    assert env.run(env.process(run(env))) == "x"
