"""Edge-case tests for the simulation core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
)


def test_allof_fails_if_any_member_fails():
    env = Environment()

    def failing(env):
        yield env.timeout(5)
        raise RuntimeError("member died")

    def waiter(env):
        p = env.process(failing(env))
        t = env.timeout(100)
        try:
            yield env.all_of([p, t])
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(waiter(env))) == "member died"


def test_anyof_failure_beats_success():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise ValueError("fast failure")

    def waiter(env):
        p = env.process(failing(env))
        t = env.timeout(50)
        try:
            yield env.any_of([p, t])
        except ValueError:
            return "caught"
        return "ok"

    assert env.run(env.process(waiter(env))) == "caught"


def test_condition_rejects_foreign_environment():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(SimulationError):
        env1.all_of([t1, t2])


def test_interrupt_while_queued_on_resource():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def victim(env):
        req = res.request()
        try:
            yield req
            log.append("granted")
        except Interrupt:
            req.cancel()
            log.append("interrupted")

    def attacker(env, p):
        yield env.timeout(10)
        p.interrupt()

    env.process(holder(env))
    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == ["interrupted"]
    # The cancelled request never occupies the resource.
    assert res.count == 0


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_with_non_exception_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(10)
    env.run(until=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_trigger_copies_state_from_other_event():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    env.run()
    dst.trigger(src)
    assert dst.triggered and dst.value == "payload"


def test_process_repr_and_event_repr():
    env = Environment()

    def body(env):
        yield env.timeout(1)

    p = env.process(body(env), name="worker")
    assert "worker" in repr(p)
    assert "alive" in repr(p)
    ev = env.event()
    assert "pending" in repr(ev)
    env.run()
    assert "done" in repr(p)


def test_nested_yield_from_processes():
    env = Environment()

    def inner(env):
        yield env.timeout(10)
        return 5

    def middle(env):
        value = yield from inner(env)
        yield env.timeout(10)
        return value * 2

    def outer(env):
        value = yield from middle(env)
        return value + 1

    assert env.run(env.process(outer(env))) == 11
    assert env.now == 20
