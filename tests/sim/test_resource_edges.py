"""Remaining edge coverage for resources and kernel wrappers."""

import pytest

from repro.config import CpuParams, KernelParams, MemoryParams
from repro.hw import Cpu, MemoryBus, PRIO_IRQ, PRIO_KERNEL
from repro.oskernel import Kernel
from repro.sim import Environment, Resource


def test_release_of_queued_request_acts_as_cancel():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def fickle(env):
        req = res.request()
        yield env.timeout(10)
        res.release(req)  # never granted: must simply dequeue
        order.append("bailed")

    def steady(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req
            order.append(("got", env.now))

    env.process(holder(env))
    env.process(fickle(env))
    env.process(steady(env))
    env.run()
    assert "bailed" in order
    assert ("got", 100) in order


def test_request_context_manager_releases_on_normal_exit():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
        return res.count

    assert env.run(env.process(user(env))) == 0


def test_cpu_occupy_runs_at_irq_priority_uninterrupted():
    env = Environment()
    cpu = Cpu(env, CpuParams())
    log = []

    def dma(env):
        yield env.timeout(500)
        return "dma-done"

    def irq_side(env):
        result = yield from cpu.occupy(dma(env), PRIO_IRQ, label="drv_rx_dma")
        log.append((result, env.now))

    def user_side(env):
        yield from cpu.execute(1_000, 10)
        log.append(("user", env.now))

    env.process(user_side(env))
    env.process(irq_side(env))
    env.run()
    # The occupy preempted the user and finished first.
    assert log[0] == ("dma-done", 500)
    assert log[1] == ("user", 1_500)


def test_kernel_lightweight_call_returns_body_value():
    env = Environment()
    cpu = Cpu(env, CpuParams())
    mem = MemoryBus(env, MemoryParams())
    kernel = Kernel(env, KernelParams(), cpu, mem)

    def body():
        yield from cpu.execute(10, PRIO_KERNEL)
        return 41

    def proc(env):
        value = yield from kernel.lightweight_call(body())
        return value + 1

    assert env.run(env.process(proc(env))) == 42


def test_kernel_syscall_propagates_body_exception():
    env = Environment()
    cpu = Cpu(env, CpuParams())
    mem = MemoryBus(env, MemoryParams())
    kernel = Kernel(env, KernelParams(), cpu, mem)

    def body():
        yield from cpu.execute(10, PRIO_KERNEL)
        raise KeyError("boom")

    def proc(env):
        try:
            yield from kernel.syscall(body())
        except KeyError:
            return "caught"

    assert env.run(env.process(proc(env))) == "caught"
