"""Event-loop ordering invariants the protocol stack leans on.

The reliability timers and the NIC coalescer assume: same-timestamp
events run in scheduling (FIFO) order, URGENT beats NORMAL at equal
timestamps, and a cancelled :class:`~repro.sim.TimerHandle` never fires
— its dead heap entry is dropped without advancing the clock.
"""

import pytest

from repro.sim import Environment, Process, Timeout
from repro.sim.core import NORMAL, URGENT


def test_same_timestamp_fifo():
    env = Environment()
    order = []
    for i in range(5):
        env.call_later(100, lambda i=i: order.append(i))
    env.run()
    assert order == list(range(5))
    assert env.now == 100


def test_urgent_before_normal_at_same_time():
    env = Environment()
    order = []
    env.call_later(100, lambda: order.append("normal"), priority=NORMAL)
    env.call_later(100, lambda: order.append("urgent"), priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_cancelled_timer_never_fires():
    env = Environment()
    fired = []
    handle = env.call_later(50, lambda: fired.append("dead"))
    env.call_later(100, lambda: fired.append("alive"))
    assert handle.active
    handle.cancel()
    assert not handle.active
    env.run()
    assert fired == ["alive"]


def test_cancel_and_rearm_only_last_fires():
    """The retransmission-timer pattern: every re-arm cancels the old
    handle; exactly one (the last) may fire."""
    env = Environment()
    fired = []

    def driver():
        handle = None
        for i in range(10):
            if handle is not None:
                handle.cancel()
            handle = env.call_later(1_000, lambda i=i: fired.append(i))
            yield Timeout(env, 10)

    Process(env, driver())
    env.run()
    assert fired == [9]


def test_peek_skips_cancelled_head():
    env = Environment()
    dead = env.call_later(10, lambda: None)
    env.call_later(30, lambda: None)
    dead.cancel()
    assert env.peek() == 30


def test_dropping_dead_entries_does_not_advance_clock():
    env = Environment()
    seen = []
    dead = env.call_later(10, lambda: None)
    env.call_later(30, lambda: seen.append(env.now))
    dead.cancel()
    env.step()  # pops the dead entry only
    assert env.now == 0
    env.step()
    assert seen == [30] and env.now == 30


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError, match="negative delay"):
        env.call_later(-1, lambda: None)


def test_interleaved_run_is_deterministic():
    """Processes and timers interleaved at equal timestamps replay
    identically, with ties resolved by scheduling order."""

    def trace():
        env = Environment()
        log = []

        def proc(tag, delay):
            for _ in range(3):
                yield Timeout(env, delay)
                log.append((env.now, tag))

        Process(env, proc("a", 10))
        Process(env, proc("b", 10))
        env.call_later(15, lambda: log.append((env.now, "timer")))
        env.run()
        return log

    first = trace()
    assert first == trace()
    assert first[0] == (10, "a") and first[1] == (10, "b")
    assert (15, "timer") in first
