"""Tests for the simulator profiling hooks (repro.obs.profile)."""

from repro.obs import EnvProfiler
from repro.sim import Environment


def run_workload(env):
    def ticker():
        for _ in range(5):
            yield env.timeout(10)

    def waiter(evt):
        yield evt

    evt = env.event()

    def firer():
        yield env.timeout(7)
        evt.succeed(42)

    env.process(ticker(), name="ticker")
    env.process(waiter(evt), name="waiter")
    env.process(firer(), name="firer")
    env.run()


def test_environment_profile_flag_counts_events():
    env = Environment(profile=True)
    run_workload(env)
    prof = env.profiler
    assert prof is not None
    assert prof.events_processed > 0
    assert prof.events_scheduled > 0
    assert prof.queue_high_water >= 1
    snap = prof.snapshot()
    assert snap["events_processed"] == prof.events_processed
    # Every process received at least one resumption.
    assert {"ticker", "waiter", "firer"} <= set(snap["per_process"])
    assert snap["per_process"]["ticker"] >= 5
    assert sum(snap["per_type"].values()) == prof.events_processed


def test_profiler_off_by_default_and_enable_late():
    env = Environment()
    assert env.profiler is None
    env.enable_profiling()
    assert isinstance(env.profiler, EnvProfiler)
    run_workload(env)
    assert env.profiler.events_processed > 0
    # enable_profiling is idempotent: same profiler object.
    prof = env.profiler
    env.enable_profiling()
    assert env.profiler is prof


def test_top_processes_ordering():
    env = Environment(profile=True)
    run_workload(env)
    top = env.profiler.top_processes(2)
    assert len(top) == 2
    assert top[0][1] >= top[1][1]


def test_profiled_run_matches_unprofiled_run():
    """Profiling must observe, never perturb: event order and final
    simulated time are identical with and without the hooks."""
    env_a, env_b = Environment(), Environment(profile=True)
    run_workload(env_a)
    run_workload(env_b)
    assert env_a.now == env_b.now
