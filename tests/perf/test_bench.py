"""Bench-suite tests: document structure, gates, determinism."""

import json

import pytest

from repro.perf import BENCH_SCHEMA, run_bench, write_bench
from repro.perf.bench import SCENARIOS, current_rev


@pytest.fixture(scope="module")
def fig7_doc():
    """One quick fig7-only bench run shared across tests."""
    return run_bench(quick=True, scenarios=["fig7"], rev="test")


def test_bench_document_structure(fig7_doc):
    doc = fig7_doc
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["rev"] == "test" and doc["quick"] is True
    assert list(doc["scenarios"]) == ["fig7"]
    scenario = doc["scenarios"]["fig7"]
    for gate in scenario["gates"].values():
        assert gate["better"] in ("lower", "higher")
        assert 0 < gate["tol"] < 1
        assert isinstance(gate["value"], (int, float))
    # Simulator cost rides along: profiler tallies plus a gated event count.
    assert scenario["profile"]["events_processed"] > 0
    assert scenario["gates"]["events_processed"]["better"] == "lower"
    assert scenario["wall_s"] >= 0
    assert doc["totals"]["events_processed"] == scenario["profile"]["events_processed"]
    json.dumps(doc)  # fully serializable


def test_fig7_scenario_layer_budget(fig7_doc):
    """The fig7 scenario carries the per-layer attribution and passed its
    internal 5% cross-check against the classic extraction."""
    scenario = fig7_doc["scenarios"]["fig7"]
    layers = scenario["metrics"]["layers_us"]
    gates = scenario["gates"]
    assert gates["total_us"]["value"] == pytest.approx(
        sum(layers.values()), rel=1e-6)
    assert scenario["metrics"]["crosscheck_max_rel"] <= 0.05
    shares = scenario["metrics"]["layer_shares"]
    assert sum(shares.values()) == pytest.approx(1.0)
    # Every nonzero layer is individually gated.
    for layer, us in layers.items():
        if us > 0:
            assert gates[f"{layer}_us"]["better"] == "lower"


def test_bench_is_deterministic(fig7_doc):
    """Two runs of the same seeded scenario produce identical gates and
    metrics (only wall_s may differ)."""
    again = run_bench(quick=True, scenarios=["fig7"], rev="test")
    assert again["scenarios"]["fig7"]["gates"] == fig7_doc["scenarios"]["fig7"]["gates"]
    assert again["scenarios"]["fig7"]["metrics"] == fig7_doc["scenarios"]["fig7"]["metrics"]
    assert again["scenarios"]["fig7"]["profile"] == fig7_doc["scenarios"]["fig7"]["profile"]


def test_bench_jobs2_matches_serial(fig7_doc):
    """Fanning scenarios over a pool moves only the wall clock: gates,
    metrics and profiler tallies stay byte-identical."""
    pooled = run_bench(quick=True, scenarios=["fig7"], rev="test", jobs=2)
    for key in ("gates", "metrics", "profile"):
        assert pooled["scenarios"]["fig7"][key] == fig7_doc["scenarios"]["fig7"][key]


def test_totals_record_per_scenario_wall(fig7_doc):
    walls = fig7_doc["totals"]["wall_by_scenario"]
    assert set(walls) == {"fig7"}
    assert walls["fig7"] == fig7_doc["scenarios"]["fig7"]["wall_s"]
    assert fig7_doc["totals"]["wall_s"] >= walls["fig7"]


def test_write_bench_stable_json(fig7_doc, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_bench(fig7_doc, str(a))
    write_bench(json.loads(a.read_text()), str(b))
    assert a.read_text() == b.read_text()


def test_run_bench_rejects_unknown_scenarios():
    with pytest.raises(KeyError, match="unknown"):
        run_bench(scenarios=["nope"])
    assert [name for name, _ in SCENARIOS] == [
        "headline", "fig4", "fig5", "fig7", "resilience", "journey",
        "bulk-flowmode", "collectives-scaling"]


def test_current_rev_is_short_string():
    rev = current_rev()
    assert isinstance(rev, str) and rev and "\n" not in rev


def test_flow_packet_diff_document(tmp_path):
    """The CI flow-vs-packet artifact: physics agree, events collapse."""
    from repro.perf.bench import flow_packet_diff

    doc = flow_packet_diff(nbytes=500_000, messages=4)
    assert doc["schema"] == "repro.flowdiff/1"
    assert doc["within_tolerance"] is True
    assert doc["event_reduction"] > 10
    # Every conservation key compared exactly equal across engines.
    physics = {d["key"]: d for d in doc["physics"]}
    for key in ("conservation.node0.clic.bytes_sent",
                "conservation.node1.clic.bytes_rx",
                "conservation.node0.nic0.tx_frames",
                "conservation.node1.nic0.rx_frames"):
        assert physics[key]["status"] == "same"
        assert physics[key]["a"] == physics[key]["b"]
    assert doc["runs"]["auto"]["flow"]["trains"] > 0
    assert "flow-vs-packet" in doc["report"]
    write_bench(doc, str(tmp_path / "flow-vs-packet.json"))
    json.loads((tmp_path / "flow-vs-packet.json").read_text())
