"""Tests for the repro.perf benchmark lab (bench/diff/check)."""
