"""Gate-check tests: classification rules and the perf CLI exit codes."""

import json

import pytest

from repro.perf import BENCH_SCHEMA, check_bench, load_bench
from repro.perf.check import (_classify, report, scenario_scorecards,
                              slo_from_bench)
from repro.perf.__main__ import main


def _doc(**gates):
    """Minimal one-scenario bench document with the given gates."""
    return {
        "schema": BENCH_SCHEMA, "rev": "t", "quick": True, "python": "3",
        "scenarios": {"s": {"gates": {
            name: {"value": value, "better": better, "tol": tol}
            for name, (value, better, tol) in gates.items()
        }, "metrics": {}, "profile": {}, "wall_s": 0.0}},
        "totals": {"wall_s": 0.0},
    }


def test_classify_directions_and_tolerance():
    assert _classify(100.0, 104.0, "lower", 0.05) == "ok"
    assert _classify(100.0, 106.0, "lower", 0.05) == "regressed"
    assert _classify(100.0, 90.0, "lower", 0.05) == "improved"
    assert _classify(100.0, 96.0, "higher", 0.05) == "ok"
    assert _classify(100.0, 94.0, "higher", 0.05) == "regressed"
    assert _classify(100.0, 110.0, "higher", 0.05) == "improved"


def test_check_bench_union_and_statuses():
    baseline = _doc(lat=(100.0, "lower", 0.05), gone=(5.0, "lower", 0.05))
    candidate = _doc(lat=(120.0, "lower", 0.05), fresh=(1.0, "higher", 0.05))
    results = check_bench(candidate, baseline)
    by_metric = {r.metric: r for r in results}
    assert by_metric["lat"].status == "regressed"
    assert by_metric["lat"].rel_delta == pytest.approx(0.2)
    assert by_metric["gone"].status == "baseline-only"
    assert by_metric["fresh"].status == "new"
    table = report(results)
    assert "regressed" in table and "baseline-only" in table and "new" in table
    # Regressions sort first in the report.
    lines = table.splitlines()
    assert "regressed" in lines[3]


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_load_bench_validates_schema(tmp_path):
    bad = _write(tmp_path, "bad.json", {"schema": "other/1"})
    with pytest.raises(ValueError, match="schema"):
        load_bench(bad)
    good = _write(tmp_path, "good.json", _doc(x=(1.0, "lower", 0.05)))
    assert load_bench(good)["schema"] == BENCH_SCHEMA


def test_cli_check_pass_fail_and_warn_only(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _doc(lat=(100.0, "lower", 0.05)))
    good = _write(tmp_path, "good.json", _doc(lat=(101.0, "lower", 0.05)))
    bad = _write(tmp_path, "bad.json", _doc(lat=(150.0, "lower", 0.05)))
    assert main(["check", good, "--baseline", base]) == 0
    assert main(["check", bad, "--baseline", base]) == 1
    assert main(["check", bad, "--baseline", base, "--warn-only"]) == 0
    out = capsys.readouterr()
    assert "regressed" in out.out and "warning" in out.err


def test_cli_diff_exit_codes(tmp_path, capsys):
    a = _write(tmp_path, "a.json", {"m": {"x": 1.0}})
    same = _write(tmp_path, "same.json", {"m": {"x": 1.01}})
    far = _write(tmp_path, "far.json", {"m": {"x": 2.0}})
    assert main(["diff", a, same]) == 0
    assert main(["diff", a, far]) == 1
    assert "+100.0%" in capsys.readouterr().out
    # A loose tolerance downgrades the same change to in-tolerance.
    assert main(["diff", a, far, "--tolerance", "2.0"]) == 0


def test_slo_from_bench_declares_gate_boundaries():
    baseline = _doc(lat=(100.0, "lower", 0.05), tput=(200.0, "higher", 0.10))
    specs = slo_from_bench(baseline)
    spec = specs["s"]
    assert spec.name == "bench.s"
    by_name = {o.name: o for o in spec.objectives}
    # lower-is-better -> ceiling at value*(1+tol); higher -> floor at (1-tol).
    assert by_name["lat"].kind == "ceiling"
    assert by_name["lat"].threshold == pytest.approx(105.0)
    assert by_name["tput"].kind == "floor"
    assert by_name["tput"].threshold == pytest.approx(180.0)
    assert by_name["lat"].metric == "scenarios.s.gates.lat.value"
    # Specs are pure data: JSON round-trip preserves the boundary.
    from repro.obs import SLOSpec
    assert SLOSpec.from_json(spec.to_json()) == spec


def test_slo_from_bench_headlines_event_reduction():
    """Scenarios with a flow-vs-packet ratio in the totals get the
    speedup headline in their spec description (candidate wins over
    baseline), and the scorecard table surfaces it."""
    from repro.obs.slo import scorecard_table

    baseline = _doc(lat=(100.0, "lower", 0.05))
    baseline["totals"]["event_reduction_by_scenario"] = {"s": 12.0}
    specs = slo_from_bench(baseline)
    assert "12.0x fewer events" in specs["s"].description
    candidate = _doc(lat=(101.0, "lower", 0.05))
    candidate["totals"]["event_reduction_by_scenario"] = {"s": 14.1}
    assert "14.1x fewer events" in slo_from_bench(baseline,
                                                  candidate)["s"].description
    cards = scenario_scorecards(candidate, baseline)
    assert "14.1x fewer events" in scorecard_table(cards["s"])
    # Scenarios without a ratio keep the plain description.
    plain = slo_from_bench(_doc(lat=(100.0, "lower", 0.05)))
    assert "fewer events" not in plain["s"].description


def test_scenario_scorecards_match_check_verdicts():
    baseline = _doc(lat=(100.0, "lower", 0.05))
    bad = _doc(lat=(150.0, "lower", 0.05))
    cards = scenario_scorecards(bad, baseline)
    assert not cards["s"]["ok"]
    assert cards["s"]["violations"] == ["lat"]
    # check_bench's regressed status comes from the same evaluation.
    assert [r.status for r in check_bench(bad, baseline)] == ["regressed"]
    good = _doc(lat=(101.0, "lower", 0.05))
    assert scenario_scorecards(good, baseline)["s"]["ok"]


def test_cli_slo_exit_codes_and_output(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _doc(lat=(100.0, "lower", 0.05)))
    good = _write(tmp_path, "good.json", _doc(lat=(101.0, "lower", 0.05)))
    bad = _write(tmp_path, "bad.json", _doc(lat=(150.0, "lower", 0.05)))
    out_path = str(tmp_path / "cards.json")
    assert main(["slo", good, "--baseline", base]) == 0
    assert main(["slo", bad, "--baseline", base, "-o", out_path]) == 1
    assert main(["slo", bad, "--baseline", base, "--warn-only"]) == 0
    out = capsys.readouterr()
    assert "SLO bench.s" in out.out
    assert "s:lat" in out.err
    doc = json.loads((tmp_path / "cards.json").read_text())
    assert doc["schema"] == "repro.slo-scorecards/1"
    assert doc["ok"] is False
    assert doc["scenarios"]["s"]["violations"] == ["lat"]


def test_cli_bench_writes_document(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--scenario", "fig7", "--rev", "cli"]) == 0
    out = capsys.readouterr().out
    assert "wrote BENCH_cli.json" in out and "fig7:" in out
    doc = json.loads((tmp_path / "BENCH_cli.json").read_text())
    assert doc["schema"] == BENCH_SCHEMA and doc["rev"] == "cli"
