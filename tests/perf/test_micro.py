"""Microbenchmark lab tests: document shape and the A/B speedup claim.

The op counts here are deliberately small — enough to make the churn
cost measurable without slowing the unit-test loop.
"""

import pytest

from repro.perf import MICRO_SCHEMA, run_micro


@pytest.fixture(scope="module")
def micro_doc():
    return run_micro(ops=10_000, repeat=2, rev="test")


def test_micro_document_structure(micro_doc):
    doc = micro_doc
    assert doc["schema"] == MICRO_SCHEMA
    assert doc["rev"] == "test"
    assert doc["ops"] == 10_000 and doc["repeat"] == 2
    assert set(doc["cases"]) == {"timer_process", "timer_fastpath",
                                 "timeout_chain", "frame_alloc_slots",
                                 "frame_alloc_dict"}
    for case in doc["cases"].values():
        assert case["wall_s"] > 0
        assert case["ns_per_op"] > 0


def test_slots_memory_footprint(micro_doc):
    """The deterministic half of the ``__slots__`` win: a slotted Frame
    must be strictly smaller than its ``__dict__``-backed twin (the wall
    clock race is perf-marked; the footprint never flakes)."""
    mem = micro_doc["memory"]
    assert mem["frame_bytes_slots"] < mem["frame_bytes_dict"]
    assert "slots_vs_dict" in micro_doc["speedup"]


@pytest.mark.perf
def test_slots_alloc_churn_wins(micro_doc):
    """Allocating/touching/retaining slotted Frames must not lose to the
    identical dataclass without slots.  The observed margin is ~5-8%
    wall (plus 2x memory, asserted unconditionally above); the floor
    here only guards against slots somehow *costing* time."""
    assert micro_doc["speedup"]["slots_vs_dict"] > 0.95


@pytest.mark.perf
def test_fastpath_beats_timer_processes(micro_doc):
    """The point of the slotted-timer rewrite: churning ``call_later``
    handles must clearly beat churning timer processes.  The real margin
    is ~3x; 1.2x keeps the assertion robust on noisy boxes — but it is
    still a wall-clock race, so it runs only under ``-m perf`` (the CI
    perf job), never in the tier-1 correctness suite."""
    assert micro_doc["speedup"]["fastpath_vs_process"] > 1.2


def test_micro_rejects_bad_inputs():
    with pytest.raises(ValueError):
        run_micro(ops=0)
    with pytest.raises(ValueError):
        run_micro(repeat=0)
