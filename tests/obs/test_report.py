"""HTML dashboard rendering: self-contained, deterministic, complete."""

from repro.obs import render_html, write_html


def _artifact(**overrides):
    art = {
        "schema": "repro.run/4",
        "experiment": "fig4.point",
        "result": {
            "seed": 7, "nbytes": 16384, "messages": 4,
            "goodput_mbps": 210.5,
            "latency": {"p50_us": 100.0, "p99_us": 180.0, "p999_us": 200.0,
                        "delivered": 4},
        },
        "metrics": {"node0.clic.pkts_tx": 12.0},
        "timeseries": {
            "node1.nic0.rx_depth": {
                "unit": "frames",
                "points": [[float(t) * 1000.0, float(t % 5)]
                           for t in range(40)],
            },
        },
        "journeys": [{
            "id": 1, "key": "msg-0", "nbytes": 16384, "delivered": True,
            "start_ns": 0.0, "end_ns": 150_000.0, "retransmits": [],
            "events": [{"hop": "send", "t": 0.0, "scope": "node0.app"},
                       {"hop": "wire", "t": 60_000.0, "scope": "net"},
                       {"hop": "deliver", "t": 150_000.0,
                        "scope": "node1.app"}],
        }],
        "slo": {
            "schema": "repro.slo-scorecard/1", "slo": "fig4.point",
            "description": "", "ok": False,
            "objectives": [
                {"name": "delivered", "metric": "result.latency.delivered",
                 "kind": "floor", "threshold": 4.0, "value": 4.0,
                 "ok": True, "status": "ok", "margin": 0.0},
                {"name": "p999", "metric": "result.latency.p999_us",
                 "kind": "ceiling", "threshold": 150.0, "value": 200.0,
                 "ok": False, "status": "violated", "margin": -50.0},
            ],
            "violations": ["p999"],
        },
        "health": [{"t_ns": 5_000.0, "rule": "delivery", "kind": "stall",
                    "severity": "critical", "message": "delivery: stuck",
                    "details": {"value": 2.0}}],
    }
    art.update(overrides)
    return art


def test_render_is_self_contained_and_has_charts():
    html = render_html(_artifact())
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
    # Self-contained: no network fetches of any kind.
    for needle in ("http://", "https://", "<script src", "@import"):
        assert needle not in html
    # Both color schemes ship in the one file.
    assert "prefers-color-scheme" in html
    assert "data-theme" in html


def test_render_covers_every_section():
    html = render_html(_artifact())
    assert "fig4.point" in html
    assert "p99.9 latency" in html
    assert "node1.nic0.rx_depth" in html
    assert "Series table" in html  # accessibility table view
    # SLO verdicts carry word + icon, never color alone.
    assert "violated" in html and "✗" in html
    # Health events render with severity word.
    assert "critical" in html and "delivery" in html
    # Journey waterfall for the slowest delivered journey.
    assert "slowest journey #1" in html


def test_render_is_deterministic():
    assert render_html(_artifact()) == render_html(_artifact())


def test_render_degrades_without_optional_sections():
    bare = _artifact(slo={}, health=[], journeys=[], timeseries={})
    html = render_html(bare)
    assert "no SLO spec declared" in html
    assert "HEALTHY" in html  # empty health == healthy verdict
    assert "no sampled time series" in html
    assert "no delivered journeys" in html


def test_write_html(tmp_path):
    path = tmp_path / "dash.html"
    write_html(_artifact(), str(path), title="smoke")
    text = path.read_text()
    assert "smoke" in text
    assert text == render_html(_artifact(), title="smoke")
