"""Digest merging: exact histogram folds and the parallel fold-back.

The contract under test is the one ``--jobs N`` sweeps rely on: folding
per-shard digests through :meth:`MetricsRegistry.merge_from` in
submission order must reproduce the single-registry run exactly —
bucket counts, every percentile, and (byte-for-byte) the JSON digest.
"""

import json
import math
import random

import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.parallel import run_tasks


def _samples(seed, n, scale=1000.0):
    rng = random.Random(seed)
    return [rng.expovariate(1.0) * scale for _ in range(n)]


def _hist(samples, name="h"):
    h = Histogram(name)
    for s in samples:
        h.record(s)
    return h


# -- histogram algebra ---------------------------------------------------

def test_merge_equals_single_pass_percentiles():
    a, b = _samples(1, 400), _samples(2, 300)
    merged = _hist(a).merge(_hist(b))
    single = _hist(a + b)
    for p in (0, 25, 50, 90, 95, 99, 99.9, 100):
        assert merged.percentile(p) == single.percentile(p)
    assert merged.count == single.count
    assert merged.minimum == single.minimum
    assert merged.maximum == single.maximum
    assert merged.to_dict()["buckets"] == single.to_dict()["buckets"]
    assert math.isclose(merged.total, single.total, rel_tol=1e-12)


def test_merge_commutes_and_associates():
    a, b, c = (_samples(s, 200) for s in (10, 11, 12))
    ab_c = _hist(a).merge(_hist(b)).merge(_hist(c))
    a_bc = _hist(a).merge(_hist(b).merge(_hist(c)))
    ba = _hist(b).merge(_hist(a))
    ab = _hist(a).merge(_hist(b))
    for lhs, rhs in ((ab_c, a_bc), (ab, ba)):
        assert lhs.to_dict()["buckets"] == rhs.to_dict()["buckets"]
        assert lhs.count == rhs.count
        assert lhs.p999 == rhs.p999


def test_merge_empty_is_identity():
    h = _hist(_samples(3, 150))
    before = h.to_dict()
    h.merge(Histogram("empty"))
    assert h.to_dict() == before
    empty = Histogram("e").merge(_hist(_samples(3, 150)))
    assert empty.to_dict()["buckets"] == before["buckets"]
    assert empty.count == before["count"]


def test_merge_underflow_and_extremes():
    neg = _hist([-5.0, 0.0, 2.0])
    pos = _hist([1.0, 7.0])
    merged = neg.merge(pos)
    single = _hist([-5.0, 0.0, 2.0, 1.0, 7.0])
    assert merged.to_dict() == single.to_dict()
    assert merged.percentile(0) == -5.0
    assert merged.percentile(100) == 7.0


def test_merge_accepts_digest_dict_and_checks_growth():
    h = _hist(_samples(4, 100))
    other = _hist(_samples(5, 100))
    via_dict = _hist(_samples(4, 100)).merge(other.to_dict())
    via_inst = _hist(_samples(4, 100)).merge(other)
    assert via_dict.to_dict() == via_inst.to_dict()
    with pytest.raises(ValueError):
        h.merge(Histogram("coarse", growth=1.5))


def test_histogram_round_trip_is_lossless():
    h = _hist(_samples(6, 250))
    clone = Histogram.from_dict(h.to_dict(), "clone")
    assert clone.to_dict() == h.to_dict()
    assert clone.p50 == h.p50 and clone.p999 == h.p999


def test_as_dict_carries_total_and_underflow():
    h = _hist([1.0, 2.0, -1.0])
    snap = h.as_dict()
    assert snap["total"] == 2.0
    assert snap["underflow"] == 1
    assert snap["count"] == 3


# -- registry fold -------------------------------------------------------

def _fill(reg, seed, n=120):
    reg.counter("pkts").inc(n)
    g = reg.gauge("depth")
    hist = reg.histogram("lat_ns")
    for i, s in enumerate(_samples(seed, n)):
        hist.record(s)
        g.set(s)
        reg.timeseries("q", "frames").sample(float(i), s)
    return reg


def test_registry_merge_from_instance_and_digest_agree():
    shards = [_fill(MetricsRegistry(), seed) for seed in (1, 2, 3)]
    by_inst = MetricsRegistry()
    by_dict = MetricsRegistry()
    for shard in shards:
        by_inst.merge_from(shard)
        by_dict.merge_from(shard.digest())
    assert json.dumps(by_inst.digest(), sort_keys=True) == \
        json.dumps(by_dict.digest(), sort_keys=True)
    assert by_inst.value("pkts") == 360.0


def test_registry_merge_kind_mismatch_raises():
    a = MetricsRegistry()
    a.counter("m")
    b = MetricsRegistry()
    b.gauge("m")
    with pytest.raises(TypeError):
        a.merge_from(b)


def test_folded_percentiles_match_single_registry():
    shards = [_fill(MetricsRegistry(), seed) for seed in (7, 8, 9)]
    fold = MetricsRegistry()
    for shard in shards:
        fold.merge_from(shard.digest())
    single = MetricsRegistry()
    hist = single.histogram("lat_ns")
    for seed in (7, 8, 9):
        for s in _samples(seed, 120):
            hist.record(s)
    folded = fold.peek("lat_ns")
    for p in (50, 95, 99, 99.9):
        assert folded.percentile(p) == hist.percentile(p)
    assert folded.to_dict()["buckets"] == hist.to_dict()["buckets"]


# -- jobs-vs-serial byte identity ---------------------------------------

def _shard_digest(seed):
    """Worker for the pool: one shard registry's digest (module-level so
    it pickles)."""
    return _fill(MetricsRegistry(), seed).digest()


def _fold(digests):
    fleet = MetricsRegistry()
    for digest in digests:
        fleet.merge_from(digest)
    return json.dumps(fleet.digest(), sort_keys=True)


def test_jobs_fold_is_byte_identical_to_serial():
    seeds = [11, 12, 13, 14]
    serial = _fold(run_tasks(_shard_digest, seeds, jobs=1))
    parallel = _fold(run_tasks(_shard_digest, seeds, jobs=2))
    assert serial == parallel
