"""End-to-end tests for the repro.trace and repro.experiments CLIs."""

import json

import pytest

from repro.obs import RunArtifact
from repro.trace import PIPELINE_SCOPE, capture_fig7, main

FIG7_STAGES_STOCK = [
    "sender: syscall + CLIC_MODULE + driver",
    "NIC DMA + flight",
    "receiver: driver interrupt (NIC->system copy)",
    "bottom halves -> CLIC_MODULE",
    "CLIC_MODULE copy to user + wake",
]


def test_capture_fig7_artifact_is_complete():
    art = capture_fig7()
    assert art.experiment == "fig7"
    assert art.result["total_us"] > 0
    assert art.metrics  # cluster-wide metrics snapshot present
    assert art.records
    stage_spans = [s for s in art.spans if s["scope"] == PIPELINE_SCOPE]
    assert [s["name"] for s in stage_spans] == FIG7_STAGES_STOCK


def test_cli_chrome_output_round_trips(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["--chrome", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ns"
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # At least one complete span per Figure-7 pipeline stage.
    stage_names = {e["name"] for e in complete if e["cat"] == PIPELINE_SCOPE}
    assert stage_names == set(FIG7_STAGES_STOCK)
    # Component spans are exported too, with metadata lanes.
    assert any(e["cat"].startswith("node0") for e in complete)
    assert any(e["ph"] == "M" for e in doc["traceEvents"])


def test_cli_direct_variant_and_filters(capsys):
    assert main(["--variant", "direct", "--source", "node1", "--event", "driver_rx"]) == 0
    doc = json.loads(capsys.readouterr().out)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants and all(e["name"] == "driver_rx" for e in instants)
    # --source node1 keeps only receiver-side spans (pipeline spans are
    # scoped fig7.pipeline and filtered out too).
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert complete and all(e["cat"].startswith("node1") for e in complete)


def test_cli_span_listing(capsys):
    assert main(["--spans"]) == 0
    out = capsys.readouterr().out
    assert "node0.kernel/syscall" in out
    assert f"{PIPELINE_SCOPE}/NIC DMA + flight" in out


def test_cli_summary_table(capsys):
    assert main(["--summary", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top scopes by self time" in out
    assert "self us" in out
    # --top bounds the table: header + separator + title + <= 3 rows.
    rows = [l for l in out.splitlines() if l.count("|") >= 4]
    assert 1 <= len(rows) - 1 <= 3  # minus the header row
    # Summary works offline from a saved artifact too.


def test_cli_summary_from_artifact(tmp_path, capsys):
    art_path = tmp_path / "run.json"
    assert main(["--artifact", str(art_path), "-o", str(tmp_path / "t.json")]) == 0
    capsys.readouterr()
    assert main(["--input", str(art_path), "--summary"]) == 0
    assert "top scopes by self time" in capsys.readouterr().out


def test_cli_artifact_write_and_reload(tmp_path, capsys):
    art_path = tmp_path / "run.json"
    out_path = tmp_path / "trace.json"
    assert main(["--artifact", str(art_path), "-o", str(out_path)]) == 0
    loaded = RunArtifact.load(str(art_path))
    assert loaded.experiment == "fig7"
    # Re-export from the artifact, no simulation run.
    assert main(["--input", str(art_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == json.loads(out_path.read_text())


def test_experiments_json_flag(tmp_path, capsys):
    from repro.experiments.registry import main as experiments_main

    path = tmp_path / "fig7.json"
    assert experiments_main(["fig7", "--json", str(path)]) == 0
    art = RunArtifact.load(str(path))
    assert art.experiment == "fig7"
    assert art.quick is True
    assert "report" not in art.result
    assert art.result["a"]["total_us"] > 0
    json.loads(art.to_json())  # round-trips
    # Every --json artifact now carries aggregated simulator-cost stats.
    assert art.profile["environments"] >= 1
    assert art.profile["events_processed"] > 0
