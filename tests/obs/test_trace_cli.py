"""End-to-end tests for the repro.trace and repro.experiments CLIs."""

import json

import pytest

from repro.obs import RunArtifact
from repro.trace import PIPELINE_SCOPE, capture_fig7, main

FIG7_STAGES_STOCK = [
    "sender: syscall + CLIC_MODULE + driver",
    "NIC DMA + flight",
    "receiver: driver interrupt (NIC->system copy)",
    "bottom halves -> CLIC_MODULE",
    "CLIC_MODULE copy to user + wake",
]


def test_capture_fig7_artifact_is_complete():
    art = capture_fig7()
    assert art.experiment == "fig7"
    assert art.result["total_us"] > 0
    assert art.metrics  # cluster-wide metrics snapshot present
    assert art.records
    stage_spans = [s for s in art.spans if s["scope"] == PIPELINE_SCOPE]
    assert [s["name"] for s in stage_spans] == FIG7_STAGES_STOCK


def test_cli_chrome_output_round_trips(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["--chrome", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ns"
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # At least one complete span per Figure-7 pipeline stage.
    stage_names = {e["name"] for e in complete if e["cat"] == PIPELINE_SCOPE}
    assert stage_names == set(FIG7_STAGES_STOCK)
    # Component spans are exported too, with metadata lanes.
    assert any(e["cat"].startswith("node0") for e in complete)
    assert any(e["ph"] == "M" for e in doc["traceEvents"])


def test_cli_direct_variant_and_filters(capsys):
    assert main(["--variant", "direct", "--source", "node1", "--event", "driver_rx"]) == 0
    doc = json.loads(capsys.readouterr().out)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants and all(e["name"] == "driver_rx" for e in instants)
    # --source node1 keeps only receiver-side spans (pipeline spans are
    # scoped fig7.pipeline and filtered out too).
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert complete and all(e["cat"].startswith("node1") for e in complete)


def test_cli_span_listing(capsys):
    assert main(["--spans"]) == 0
    out = capsys.readouterr().out
    assert "node0.kernel/syscall" in out
    assert f"{PIPELINE_SCOPE}/NIC DMA + flight" in out


def test_cli_summary_table(capsys):
    assert main(["--summary", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top scopes by self time" in out
    assert "self us" in out
    # --top bounds the table: header + separator + title + <= 3 rows.
    rows = [l for l in out.splitlines() if l.count("|") >= 4]
    assert 1 <= len(rows) - 1 <= 3  # minus the header row
    # Summary works offline from a saved artifact too.


def test_cli_summary_from_artifact(tmp_path, capsys):
    art_path = tmp_path / "run.json"
    assert main(["--artifact", str(art_path), "-o", str(tmp_path / "t.json")]) == 0
    capsys.readouterr()
    assert main(["--input", str(art_path), "--summary"]) == 0
    assert "top scopes by self time" in capsys.readouterr().out


def test_cli_artifact_write_and_reload(tmp_path, capsys):
    art_path = tmp_path / "run.json"
    out_path = tmp_path / "trace.json"
    assert main(["--artifact", str(art_path), "-o", str(out_path)]) == 0
    loaded = RunArtifact.load(str(art_path))
    assert loaded.experiment == "fig7"
    # Re-export from the artifact, no simulation run.
    assert main(["--input", str(art_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == json.loads(out_path.read_text())


def test_experiments_json_flag(tmp_path, capsys):
    from repro.experiments.registry import main as experiments_main

    path = tmp_path / "fig7.json"
    assert experiments_main(["fig7", "--json", str(path)]) == 0
    art = RunArtifact.load(str(path))
    assert art.experiment == "fig7"
    assert art.quick is True
    assert "report" not in art.result
    assert art.result["a"]["total_us"] > 0
    json.loads(art.to_json())  # round-trips
    # Every --json artifact now carries aggregated simulator-cost stats.
    assert art.profile["environments"] >= 1
    assert art.profile["events_processed"] > 0


# ---------------------------------------------------------------------------
# fig4-point: journey capture, --journey / --outliers, flow+counter export
# ---------------------------------------------------------------------------

_FIG4P_ARGS = ["--experiment", "fig4-point", "--nbytes", "16384",
               "--messages", "8", "--loss", "0.02"]


@pytest.fixture(scope="module")
def fig4p_artifact(tmp_path_factory):
    from repro.trace import capture_fig4_point

    art = capture_fig4_point(nbytes=16_384, messages=8, loss=0.02)
    path = tmp_path_factory.mktemp("fig4p") / "art.json"
    art.write(str(path))
    return art, path


def test_capture_fig4_point_artifact(fig4p_artifact):
    art, _ = fig4p_artifact
    assert art.experiment == "fig4.point"
    assert len(art.journeys) == 8
    assert all(j["delivered"] for j in art.journeys)
    assert any(j["retransmits"] for j in art.journeys)
    assert art.result["latency"]["p999_us"] >= art.result["latency"]["p50_us"]
    assert art.timeseries  # queue depths were sampled
    assert any(name.endswith(".rx_depth") for name in art.timeseries)
    assert any(name.startswith("switch.port") for name in art.timeseries)


def test_cli_fig4_point_chrome_has_flows_and_counters(fig4p_artifact, capsys):
    _, path = fig4p_artifact
    assert main(["--input", str(path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"s", "f", "C"} <= phases


def test_cli_journey_waterfall(fig4p_artifact, capsys):
    _, path = fig4p_artifact
    assert main(["--input", str(path), "--journey", "1"]) == 0
    out = capsys.readouterr().out
    assert "Journey #1" in out
    for hop in ("send", "wire", "switch", "irq", "deliver", "TOTAL"):
        assert hop in out


def test_cli_outliers_report(fig4p_artifact, capsys):
    _, path = fig4p_artifact
    assert main(["--input", str(path), "--outliers", "3"]) == 0
    out = capsys.readouterr().out
    assert "Top 3 slowest journeys" in out
    assert "dominant hop" in out


def test_cli_journey_flags_reject_artifacts_without_journeys(tmp_path, capsys):
    art_path = tmp_path / "fig7.json"
    assert main(["--artifact", str(art_path), "-o", str(tmp_path / "t.json")]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["--input", str(art_path), "--outliers", "3"])
    assert "no journeys" in capsys.readouterr().err


def test_cli_unknown_journey_id_errors(fig4p_artifact, capsys):
    _, path = fig4p_artifact
    with pytest.raises(SystemExit):
        main(["--input", str(path), "--journey", "999"])
    assert "no journey with id 999" in capsys.readouterr().err


def test_capture_fig4_point_has_slo_and_health(fig4p_artifact):
    art, _ = fig4p_artifact
    card = art.slo
    assert card["schema"] == "repro.slo-scorecard/1"
    assert card["slo"] == "fig4-point"
    assert card["ok"], f"fig4-point SLO violated: {card['violations']}"
    names = {r["name"] for r in card["objectives"]}
    assert {"delivered", "p999-latency", "goodput",
            "retransmit-budget", "rx-depth-burn"} <= names
    # The watchdog rode the sampler; a healthy lossy-but-delivering run
    # has an event list (possibly empty) and no critical events.
    assert isinstance(art.health, list)
    assert not any(e["severity"] == "critical" for e in art.health)


def test_cli_html_dashboard_is_self_contained(fig4p_artifact, tmp_path, capsys):
    _, path = fig4p_artifact
    out = tmp_path / "dash.html"
    assert main(["--input", str(path), "--html", "-o", str(out)]) == 0
    html = out.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
    for needle in ("http://", "https://", "<script src"):
        assert needle not in html
    assert "fig4.point" in html
    assert "SLO scorecard" in html


def test_cli_html_to_stdout(fig4p_artifact, capsys):
    _, path = fig4p_artifact
    assert main(["--input", str(path), "--html"]) == 0
    assert "<!DOCTYPE html>" in capsys.readouterr().out


def test_cli_fig4_point_capture_is_deterministic(tmp_path):
    out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(_FIG4P_ARGS + ["-o", str(out_a)]) == 0
    assert main(_FIG4P_ARGS + ["-o", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
