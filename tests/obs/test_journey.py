"""Journey-tracing tests: fan-out/join, genealogy, telemetry, export.

Covers the acceptance criteria of the frame-level causal-tracing work:
fragmentation fan-out joins back to one delivery, retransmissions are
recorded as children of the original transmission under seeded
``FaultPlan`` loss, waterfalls telescope exactly to the end-to-end
latency, outlier explanations name a dominant hop, the Chrome export
carries flow (``s``/``t``/``f``) and counter (``C``) events, and the
whole capture is byte-reproducible under a fixed seed — without
perturbing the simulation at all.
"""

import dataclasses
import json

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.faults import FaultPlan
from repro.obs import (
    HOP_CHAIN,
    JourneyProbe,
    JourneyRecorder,
    RunArtifact,
    chrome_trace_json,
    explain_outliers,
    journey_latency_summary,
    journey_waterfall,
    outlier_report,
    waterfall_table,
)
from repro.workloads.adapters import clic_pair
from repro.workloads.pingpong import stream


def _traced_stream(nbytes, messages, faults=None, seed=42):
    """Run a CLIC stream with journey tracing on; returns (result, dicts,
    metrics snapshot)."""
    cfg = dataclasses.replace(granada2003(mtu=1500), seed=seed)
    cluster = Cluster(cfg, protocols=("clic",), faults=faults)
    recorder = JourneyRecorder(cluster.env)
    cluster.tracer.journeys = recorder
    probe = JourneyProbe.install(recorder)
    try:
        res = stream(cluster, clic_pair(), nbytes, messages=messages)
    finally:
        probe.uninstall()
    return res, recorder.as_dicts(), cluster.metrics.snapshot()


@pytest.fixture(scope="module")
def lossy_run():
    """A burst-loss run big enough to force fragmentation + retransmits."""
    res, journeys, snap = _traced_stream(
        65_536, 16,
        faults=FaultPlan.bursty(0.02, mean_burst_frames=8.0, loss_bad=1.0))
    return res, journeys, snap


def test_fragmentation_fans_out_and_joins_to_one_delivery():
    # 64 KiB over MTU 1500 fragments into ~45 pieces; all of them must
    # join back into exactly one deliver event per message.
    _, journeys, _ = _traced_stream(65_536, 2)
    assert len(journeys) == 2
    for j in journeys:
        assert j["delivered"]
        assert j["fragments"] > 1
        fragment_events = [e for e in j["events"] if e["hop"] == "fragment"]
        deliver_events = [e for e in j["events"] if e["hop"] == "deliver"]
        assert len(fragment_events) == j["fragments"]
        assert len(deliver_events) == 1
        assert j["end_ns"] == deliver_events[0]["t"]
        # every fragment was actually handed to the driver
        tx_pkts = {e["pkt"] for e in j["events"] if e["hop"] == "tx_queue"}
        assert {e["pkt"] for e in fragment_events} <= tx_pkts


def test_all_hops_present_and_waterfall_telescopes(lossy_run):
    _, journeys, _ = lossy_run
    delivered = [j for j in journeys if j["delivered"]]
    assert delivered, "no journey delivered"
    for j in delivered:
        hops = {e["hop"] for e in j["events"]}
        assert hops >= set(HOP_CHAIN), f"missing hops: {set(HOP_CHAIN) - hops}"
        segments = journey_waterfall(j)
        assert [s["hop"] for s in segments] == list(HOP_CHAIN)
        total = sum(s["dur_ns"] for s in segments)
        e2e = j["end_ns"] - j["start_ns"]
        assert total == pytest.approx(e2e, rel=1e-12)


def test_retransmit_genealogy_under_injected_loss(lossy_run):
    _, journeys, _ = lossy_run
    retx_journeys = [j for j in journeys if j["retransmits"]]
    assert retx_journeys, "burst loss produced no retransmit children"
    for j in retx_journeys:
        by_index = {e["i"]: e for e in j["events"]}
        for child in j["retransmits"]:
            assert child["kind"] in ("rto", "fast", "partial_ack")
            parent = by_index[child["parent"]]
            # the child links back to the *original* transmission of the
            # same packet, which necessarily happened earlier
            assert parent["hop"] == "tx_queue"
            assert parent["pkt"] == child["pkt"]
            assert parent["t"] < child["t"]


def test_outliers_name_dominant_hop_and_loss_involvement(lossy_run):
    _, journeys, _ = lossy_run
    outliers = explain_outliers(journeys, top=5)
    assert len(outliers) == 5
    lats = [o["latency_us"] for o in outliers]
    assert lats == sorted(lats, reverse=True)
    assert outliers[0]["band"] in ("p99", "p99.9")
    for o in outliers:
        assert o["dominant_hop"] in HOP_CHAIN
        assert 0.0 < o["dominant_share"] <= 1.0
        if o["retransmits"]:
            assert o["retransmit_kinds"]
    summary = journey_latency_summary(journeys)
    assert summary["p50_us"] <= summary["p99_us"] <= summary["p999_us"]
    assert summary["delivered"] == summary["messages"] == len(journeys)
    assert summary["retransmitted"] > 0
    # the human-readable renderings agree with the data
    assert outliers[0]["dominant_hop"] in outlier_report(journeys, top=5)
    assert "TOTAL" in waterfall_table(journeys[0])


def test_journey_capture_does_not_perturb_the_simulation():
    faults = FaultPlan.bursty(0.02, mean_burst_frames=8.0, loss_bad=1.0)
    res_on, _, snap_on = _traced_stream(16_384, 8, faults=faults)
    cfg = dataclasses.replace(granada2003(mtu=1500), seed=42)
    cluster = Cluster(cfg, protocols=("clic",), faults=faults)
    res_off = stream(cluster, clic_pair(), 16_384, messages=8)
    assert res_on.elapsed_ns == res_off.elapsed_ns
    from repro.obs import jsonable
    assert json.dumps(jsonable(snap_on), sort_keys=True) == \
        json.dumps(jsonable(cluster.metrics.snapshot()), sort_keys=True)


def test_capture_is_byte_reproducible_under_fixed_seed():
    faults = FaultPlan.bursty(0.02, mean_burst_frames=8.0, loss_bad=1.0)
    _, j1, _ = _traced_stream(16_384, 8, faults=faults)
    _, j2, _ = _traced_stream(16_384, 8, faults=faults)
    assert json.dumps(j1, sort_keys=True) == json.dumps(j2, sort_keys=True)
    assert chrome_trace_json(journeys=j1) == chrome_trace_json(journeys=j2)


def test_chrome_export_flow_and_counter_events(lossy_run):
    _, journeys, _ = lossy_run
    timeseries = {
        "node0.nic0.rx_depth": {"unit": "frames", "count": 2,
                                "points": [[0.0, 1.0], [50_000.0, 3.0]]},
    }
    doc = json.loads(chrome_trace_json(journeys=journeys, timeseries=timeseries))
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"s", "t", "f", "C", "M"} <= phases
    flows = [e for e in events if e["ph"] in ("s", "t", "f")]
    for jid in (j["id"] for j in journeys):
        chain = [e for e in flows if e["id"] == jid]
        assert chain[0]["ph"] == "s"
        assert chain[-1]["ph"] == "f"
        assert chain[-1]["bp"] == "e"
        assert all(e["ph"] == "t" for e in chain[1:-1])
    counters = [e for e in events if e["ph"] == "C"]
    assert [c["args"]["value"] for c in counters] == [1.0, 3.0]
    assert counters[0]["name"] == "rx_depth"
    assert counters[0]["cat"] == "node0.nic0"


def test_artifact_roundtrip_preserves_journeys_and_timeseries(tmp_path, lossy_run):
    _, journeys, snap = lossy_run
    art = RunArtifact(experiment="fig4.point", result={"x": 1}, metrics=snap,
                      journeys=journeys,
                      timeseries={"a.b": {"unit": "", "count": 1,
                                          "points": [[0.0, 2.0]]}})
    path = tmp_path / "art.json"
    art.write(str(path))
    loaded = RunArtifact.load(str(path))
    assert loaded == art
    assert loaded.to_json() == art.to_json()
    assert loaded.chrome_json() == art.chrome_json()
    # v2 documents (no journeys/timeseries) still load and upgrade
    doc = art.to_dict()
    doc.pop("journeys")
    doc.pop("timeseries")
    doc["schema"] = "repro.run/2"
    old = RunArtifact.from_dict(doc)
    assert old.schema == "repro.run/4"
    assert old.journeys == [] and old.timeseries == {}
