"""Trace-analytics tests: span trees, self-time, critical paths, layers."""

import pytest

from repro.obs import (
    LAYERS,
    attribution_table,
    critical_path,
    fig7_stage_durations,
    layer_attribution,
    scope_stats,
    span_tree,
    summary_table,
)


def _span(id, scope, name, start, end, parent=None, **attrs):
    return {"id": id, "scope": scope, "name": name, "start_ns": float(start),
            "end_ns": float(end), "parent": parent, "attrs": attrs}


SYNTHETIC = [
    _span(1, "node0.kernel", "syscall", 0, 100),
    _span(2, "node0.clic", "clic_send", 10, 60, parent=1),
    _span(3, "node0.clic", "copy", 20, 40, parent=2),
    _span(4, "node1.eth0", "irq", 200, 260),
]


def test_span_tree_rebuilds_forest():
    roots, by_id = span_tree(SYNTHETIC)
    assert [r.span["id"] for r in roots] == [1, 4]
    assert [c.span["id"] for c in by_id[1].children] == [2]
    assert [c.span["id"] for c in by_id[2].children] == [3]
    # A dangling parent id degrades to a root, not a crash.
    roots2, _ = span_tree([_span(9, "x", "y", 0, 1, parent=999)])
    assert len(roots2) == 1


def test_self_time_subtracts_children():
    _, by_id = span_tree(SYNTHETIC)
    assert by_id[1].duration_ns == 100.0
    assert by_id[1].self_ns == 50.0  # 100 - child(50)
    assert by_id[2].self_ns == 30.0  # 50 - child(20)
    assert by_id[3].self_ns == 20.0  # leaf: self == total
    # Overlapping children longer than the parent clamp at zero.
    _, clamped = span_tree([
        _span(1, "a", "p", 0, 10),
        _span(2, "a", "c", 0, 8, parent=1),
        _span(3, "a", "c", 2, 10, parent=1),
    ])
    assert clamped[1].self_ns == 0.0


def test_scope_stats_aggregates_and_sorts():
    stats = scope_stats(SYNTHETIC)
    keys = [s.key for s in stats]
    assert set(keys) == {"node0.kernel/syscall", "node0.clic/clic_send",
                         "node0.clic/copy", "node1.eth0/irq"}
    # Sorted by self time descending: the irq span (60 ns) leads.
    assert keys[0] == "node1.eth0/irq"
    assert stats[0].count == 1 and stats[0].total_ns == 60.0


def test_summary_table_renders_and_truncates():
    table = summary_table(SYNTHETIC, top=2, title="T")
    assert "T" in table and "node1.eth0/irq" in table
    assert "node0.clic/copy" not in table  # beyond top-2
    assert "#" in table  # the bar column
    assert "no completed spans" in summary_table([])


@pytest.fixture(scope="module")
def fig7_artifact():
    """One traced Figure-7 run shared by the critical-path tests."""
    from repro.trace import capture_fig7

    return capture_fig7()


def test_critical_path_covers_figure7_window(fig7_artifact):
    art = fig7_artifact
    path = critical_path(art.spans, art.records, art.result["packet_id"],
                         "node0", "node1")
    assert path.packet_id == art.result["packet_id"]
    # Gap-free chain: each hop starts where the previous one ended.
    for prev, seg in zip(path.segments, path.segments[1:]):
        assert seg.start_ns == prev.end_ns
        assert seg.duration_ns > 0
        assert seg.layer in LAYERS
    # The path spans the same window the fig7 experiment measures.
    assert path.total_us == pytest.approx(art.result["total_us"], rel=1e-9)
    layers = layer_attribution(path)
    assert layers == path.layer_ns()
    assert sum(layers.values()) == pytest.approx(path.total_ns)
    # Every share in [0, 1], summing to 1.
    shares = path.layer_shares()
    assert all(0.0 <= v <= 1.0 for v in shares.values())
    assert sum(shares.values()) == pytest.approx(1.0)
    # Tables render without touching live simulator objects.
    assert "pkt" in path.table()
    assert "TOTAL" in attribution_table(layers)


def test_span_attribution_matches_fig7_experiment(fig7_artifact):
    """The headline acceptance check: span-derived stage durations agree
    with the classic flat-trace extraction within 5%."""
    art = fig7_artifact
    path = critical_path(art.spans, art.records, art.result["packet_id"],
                         "node0", "node1")
    derived = fig7_stage_durations(path)
    legacy = {}
    for stage in art.result["stages"]:
        name = stage["name"]
        if name in ("bottom halves -> CLIC_MODULE",
                    "CLIC_MODULE copy to user + wake"):
            name = "receiver: post-DMA software path"
        legacy[name] = legacy.get(name, 0.0) + stage["end_ns"] - stage["start_ns"]
    assert set(derived) == set(legacy)
    for name, want in legacy.items():
        assert derived[name] == pytest.approx(want, rel=0.05), name


def test_critical_path_rejects_incomplete_traces(fig7_artifact):
    art = fig7_artifact
    pkt = art.result["packet_id"]
    with pytest.raises(ValueError, match="missing"):
        critical_path([], [], pkt, "node0", "node1")
    # Dropping the receiver's clic_rx span alone must also be fatal.
    spans = [s for s in art.spans if s["name"] != "clic_rx"]
    with pytest.raises(ValueError, match="clic_rx"):
        critical_path(spans, art.records, pkt, "node0", "node1")
    with pytest.raises(ValueError):
        critical_path(art.spans, art.records, pkt + 999, "node0", "node1")


def test_fig7_stage_durations_rejects_unknown_hops():
    from repro.obs import CriticalPath, PathSegment

    path = CriticalPath(1, [PathSegment("martian hop", "kernel", 0.0, 1.0)])
    with pytest.raises(KeyError, match="martian"):
        fig7_stage_durations(path)
