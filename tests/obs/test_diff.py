"""RunDiff tests: flattening, tolerance classification, reporting."""

import math

import pytest

from repro.obs import RunArtifact, RunDiff, flatten_numeric


def test_flatten_numeric_leaves_and_ignores():
    flat = flatten_numeric({
        "a": {"b": 1, "c": [10, 20.5]},
        "spans": [{"start_ns": 0}],     # ignored payload key
        "flag": True,                    # booleans are not metrics
        "name": "fig7",                  # strings are not metrics
        "bad": float("nan"),             # non-finite dropped
    })
    assert flat == {"a.b": 1.0, "a.c[0]": 10.0, "a.c[1]": 20.5}


def test_diff_identical_documents():
    doc = {"metrics": {"x": 1.0, "y": 2.0}}
    diff = RunDiff(doc, doc)
    assert diff.within_tolerance()
    assert not diff.changed and not diff.added and not diff.removed
    assert "no differences" in diff.report()


def test_diff_classifies_changed_added_removed():
    a = {"m": {"lat": 100.0, "gone": 5.0, "zero": 0.0}}
    b = {"m": {"lat": 120.0, "new": 7.0, "zero": 3.0}}
    diff = RunDiff(a, b, tolerance=0.05)
    assert [d.key for d in diff.changed] == ["m.lat", "m.zero"]
    assert [d.key for d in diff.added] == ["m.new"]
    assert [d.key for d in diff.removed] == ["m.gone"]
    assert not diff.within_tolerance()
    lat = next(d for d in diff.deltas if d.key == "m.lat")
    assert lat.abs_delta == 20.0
    assert lat.rel_delta == pytest.approx(0.2)
    # 0 -> nonzero is an infinite relative change, always beyond tolerance.
    zero = next(d for d in diff.deltas if d.key == "m.zero")
    assert math.isinf(zero.rel_delta)
    report = diff.report()
    assert "m.lat" in report and "+20.0%" in report and "added" in report


def test_diff_tolerance_prefix_overrides():
    a = {"m": {"noisy": 100.0, "tight": 100.0}}
    b = {"m": {"noisy": 130.0, "tight": 130.0}}
    diff = RunDiff(a, b, tolerance=0.05, tolerances={"m.noisy": 0.5})
    assert diff.tolerance_for("m.noisy") == 0.5
    assert diff.tolerance_for("m.tight") == 0.05
    assert [d.key for d in diff.changed] == ["m.tight"]
    # The longest matching prefix wins.
    diff2 = RunDiff(a, b, tolerances={"m": 0.5, "m.tight": 0.01})
    assert diff2.tolerance_for("m.tight") == 0.01
    assert [d.key for d in diff2.changed] == ["m.tight"]


def test_diff_accepts_run_artifacts():
    art_a = RunArtifact(experiment="x", result={"total_us": 100.0})
    art_b = RunArtifact(experiment="x", result={"total_us": 200.0})
    diff = RunDiff(art_a, art_b)
    assert [d.key for d in diff.changed] == ["result.total_us"]
    assert RunDiff(art_a, art_a).within_tolerance()
