"""Health watchdog: edge-triggered stalls/storms and observer purity."""

import json

import pytest

from repro.obs import (
    HEALTH_SCHEMA,
    HealthEvent,
    HealthWatchdog,
    MetricsRegistry,
    TimeSeriesSampler,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def call_later(self, delay, fn):  # sampler arming; ticks are manual
        return None


def _ticks(watchdog, clock, values, step=100.0):
    """Drive one probe sequence through the watchdog, one tick per value."""
    for v in values:
        clock.now += step
        watchdog._probe_value = v
        watchdog.tick()


def _watch_progress(values, stall_ticks=3):
    clock = _Clock()
    dog = HealthWatchdog(clock)
    dog.watch_progress("delivery", lambda: dog._probe_value,
                       stall_ticks=stall_ticks)
    _ticks(dog, clock, values)
    return dog


def test_stall_is_edge_triggered_once():
    # 1,2 progress; then six flat ticks: exactly one stall event.
    dog = _watch_progress([1, 2, 2, 2, 2, 2, 2, 2])
    kinds = [e.kind for e in dog.events]
    assert kinds == ["stall"]
    event = dog.events[0]
    assert event.rule == "delivery"
    assert event.severity == "critical"
    assert event.details["value"] == 2.0
    # Stall fired on the 3rd flat tick: t = (2 progress + 3 flat) * 100.
    assert event.t_ns == 500.0


def test_stall_then_recovery_pairs_events():
    # First tick primes the baseline; ticks 2-4 are flat (stall fires on
    # the 3rd flat tick, t=400); tick 5 recovers.
    dog = _watch_progress([1, 1, 1, 1, 5])
    assert [e.kind for e in dog.events] == ["stall", "recovered"]
    recovered = dog.events[1]
    assert recovered.severity == "info"
    assert recovered.details["stalled_ns"] == 100.0  # t=500 - stall at t=400
    assert dog.summary()["healthy"] is False  # a stall happened


def test_no_stall_under_threshold():
    dog = _watch_progress([1, 1, 2, 2, 3, 3])  # never 3 flat ticks
    assert dog.events == []
    summary = dog.summary()
    assert summary == {"schema": HEALTH_SCHEMA, "healthy": True,
                       "worst_severity": "info", "events": 0, "by_kind": {}}


def test_storm_and_recovery_edge_triggered():
    clock = _Clock()
    dog = HealthWatchdog(clock)
    dog.watch_rate("rto", lambda: dog._probe_value,
                   threshold=5.0, window_ticks=2)
    # Slow rise (1/tick) stays under budget; the burst to 11 rises +9
    # over the 2-tick window (2 -> 11) and storms; flat ticks drain the
    # window and recover.
    _ticks(dog, clock, [0, 1, 2, 3, 11, 11, 11, 11])
    assert [e.kind for e in dog.events] == ["storm", "recovered"]
    storm = dog.events[0]
    assert storm.severity == "warning"
    assert storm.details["rise"] == 9.0
    assert dog.events[1].details["storm_ns"] > 0
    assert dog.summary()["by_kind"] == {"recovered": 1, "storm": 1}


def test_severity_validated_and_summary_worst():
    dog = HealthWatchdog(_Clock())
    with pytest.raises(ValueError, match="severity"):
        dog.watch_progress("x", lambda: 0.0, severity="fatal")


def test_event_round_trip():
    e = HealthEvent(t_ns=1.0, rule="r", kind="storm", severity="warning",
                    message="m", details={"rise": 2.0})
    assert HealthEvent.from_dict(e.to_dict()) == e


def test_watchdog_is_pure_observer_on_sampler():
    """A watched run's metrics snapshot is bit-identical to an unwatched
    one, including lazily-created counters staying absent."""

    def run(watched):
        clock = _Clock()
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(clock, interval_ns=100.0)
        sampler.add(reg.timeseries("depth", "frames"),
                    lambda: reg.value("pkts"))
        if watched:
            dog = HealthWatchdog(clock).attach(sampler)
            # Probes a counter nobody ever creates: must not create it.
            dog.watch_progress("ghost", lambda: reg.value("pkts_retx"),
                               stall_ticks=2)
        sampler.start()
        for step in range(5):
            clock.now += 100.0
            reg.counter("pkts").inc()
            sampler._sample_all()
        return json.dumps({"snapshot": reg.snapshot(),
                           "digest": reg.digest()}, sort_keys=True)

    assert run(watched=False) == run(watched=True)
