"""Metrics-layer tests: instrument semantics and percentile accuracy."""

import math
import random

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    TimeSeriesSampler,
)


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert c.as_dict() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_extremes():
    g = Gauge("depth")
    assert g.as_dict() == {"value": 0.0, "high_water": 0.0, "low_water": 0.0, "samples": 0}
    g.set(3)
    g.inc()
    g.dec(5)
    assert g.value == -1
    assert g.high_water == 4
    assert g.low_water == -1
    assert g.samples == 3


def _oracle_percentile(samples, p):
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("p", [50, 95, 99])
def test_histogram_percentiles_vs_sorted_oracle(seed, p):
    """Every percentile estimate must be within the documented relative
    error bound (one bucket's growth factor) of the sorted-list oracle."""
    rng = random.Random(seed)
    hist = Histogram(growth=1.05)
    samples = [rng.lognormvariate(8, 1.5) for _ in range(5000)]
    for s in samples:
        hist.record(s)
    exact = _oracle_percentile(samples, p)
    approx = hist.percentile(p)
    assert exact / hist.growth <= approx <= exact * hist.growth
    # Exact moments are exact, not bucketed.
    assert hist.count == len(samples)
    assert hist.total == pytest.approx(sum(samples))
    assert hist.minimum == min(samples)
    assert hist.maximum == max(samples)


def test_histogram_underflow_and_edges():
    hist = Histogram()
    assert hist.percentile(50) == 0.0
    for v in (-5.0, 0.0, 10.0, 20.0):
        hist.record(v)
    assert hist.count == 4
    # The low percentiles come from the underflow bucket.
    assert hist.percentile(25) == -5.0
    assert hist.percentile(100) <= hist.maximum
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    d = hist.as_dict()
    assert d["count"] == 4 and d["min"] == -5.0 and d["max"] == 20.0


def test_histogram_single_sample_all_percentiles():
    hist = Histogram()
    hist.record(123.0)
    for p in (0, 50, 99, 100):
        assert hist.percentile(p) == 123.0


def test_histogram_percentile_exact_extremes():
    """p=0 / p=100 return the exact tracked min/max, not the nearest
    bucket boundary — including a negative minimum from the underflow
    bucket."""
    hist = Histogram()
    for v in (-7.5, 1.0, 2.0, 3.0, 1e6):
        hist.record(v)
    assert hist.percentile(0) == -7.5
    assert hist.percentile(100) == 1e6
    # Interior percentiles still go through the bucket approximation.
    assert -7.5 <= hist.percentile(50) <= 1e6


def test_histogram_empty_every_percentile_is_zero():
    hist = Histogram()
    for p in (0, 50, 100):
        assert hist.percentile(p) == 0.0


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c = reg.counter("a.count")
    assert reg.counter("a.count") is c
    reg.gauge("a.depth")
    reg.histogram("a.lat_ns")
    assert len(reg) == 3
    with pytest.raises(TypeError, match="gauge"):
        reg.counter("a.depth")
    assert reg.peek("nope") is None
    reg.discard("a.depth")
    reg.discard("a.depth")  # idempotent
    assert len(reg) == 2


def test_registry_snapshot_sorted_and_typed():
    reg = MetricsRegistry()
    reg.counter("z").inc(2)
    reg.histogram("a").record(10.0)
    snap = reg.snapshot()
    assert list(snap) == ["a", "z"]
    assert snap["z"] == 2
    assert snap["a"]["count"] == 1
    reg.reset()
    assert len(reg) == 0


def test_histogram_p999_tracks_extreme_tail():
    hist = Histogram("lat")
    for _ in range(999):
        hist.record(1.0)
    hist.record(1000.0)
    # 1 sample in 1000 at the top: p99.9 must see the outlier region
    # while p50 stays on the bulk.
    assert hist.p50 <= 2.0
    assert hist.p999 > hist.p99 * 0.99
    assert hist.p999 >= hist.percentile(99.0)
    snap = hist.as_dict()
    assert snap["p999"] == hist.p999
    assert set(snap) >= {"p50", "p95", "p99", "p999"}


def test_timeseries_records_points_in_order():
    ts = TimeSeries("q.depth", unit="frames")
    ts.sample(0.0, 1.0)
    ts.sample(50.0, 3.0)
    assert len(ts) == 2
    assert ts.as_dict() == {
        "unit": "frames", "count": 2, "points": [[0.0, 1.0], [50.0, 3.0]]}


class _FakeEnv:
    """Minimal duck-typed env: manual clock + immediate-sorted timers."""

    def __init__(self):
        self.now = 0.0
        self.timers = []

    def call_later(self, delay, fn):
        self.timers.append((self.now + delay, fn))

    def run_until(self, t_end):
        while self.timers:
            self.timers.sort(key=lambda tf: tf[0])
            t, fn = self.timers[0]
            if t > t_end:
                return
            self.timers.pop(0)
            self.now = t
            fn()


def test_sampler_cadence_and_stop():
    env = _FakeEnv()
    sampler = TimeSeriesSampler(env, interval_ns=100.0)
    level = {"v": 0.0}
    ts = sampler.add(TimeSeries("depth"), lambda: level["v"])
    sampler.start()  # immediate first sample at t=0
    level["v"] = 7.0
    env.run_until(350.0)
    assert [t for t, _ in ts.points] == [0.0, 100.0, 200.0, 300.0]
    assert [v for _, v in ts.points] == [0.0, 7.0, 7.0, 7.0]
    assert sampler.ticks == 4
    sampler.stop()
    env.run_until(1000.0)  # pending timer fires but is a no-op
    assert len(ts.points) == 4
    with pytest.raises(RuntimeError, match="already started"):
        sampler.start()


def test_sampler_max_samples_backstop():
    env = _FakeEnv()
    sampler = TimeSeriesSampler(env, interval_ns=10.0, max_samples=3)
    ts = sampler.add(TimeSeries("d"), lambda: 1.0)
    sampler.start()
    env.run_until(10_000.0)
    assert len(ts.points) == 3
    assert not env.timers  # stopped re-arming: cannot pin a run alive


def test_registry_timeseries_excluded_from_snapshot():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    ts = reg.timeseries("b.depth", unit="frames")
    ts.sample(0.0, 2.0)
    assert reg.timeseries("b.depth") is ts
    assert list(reg.snapshot()) == ["a"]
    with pytest.raises(TypeError, match="timeseries"):
        reg.gauge("b.depth")


def test_sampler_stop_cancels_pending_timer_on_real_env():
    from repro.sim import Environment

    env = Environment()
    sampler = TimeSeriesSampler(env, interval_ns=1000.0)
    ts = sampler.add(TimeSeries("depth"), lambda: 1.0)
    sampler.start()
    env.run(until=3500.0)
    assert sampler.ticks == 4  # t=0, 1000, 2000, 3000
    handle = sampler._handle
    assert handle.active
    sampler.stop()
    assert not handle.active
    assert sampler._handle is None
    # Draining the queue discards the cancelled entry without firing it:
    # the clock never advances to the dead timer's t=4000 deadline.
    env.run()
    assert env.now == 3500.0
    assert sampler.ticks == 4
    assert len(ts.points) == 4


def test_sampler_on_tick_observers_see_sampled_round():
    env = _FakeEnv()
    sampler = TimeSeriesSampler(env, interval_ns=10.0)
    ts = sampler.add(TimeSeries("d"), lambda: float(sampler.ticks))
    seen = []
    sampler.on_tick(lambda: seen.append(len(ts.points)))
    sampler.start()
    env.run_until(25.0)
    # Each observer call happens after that round's probes sampled.
    assert seen == [1, 2, 3]


def test_registry_timeseries_unit_mismatch_raises():
    reg = MetricsRegistry()
    reg.timeseries("q.depth", unit="frames")
    with pytest.raises(ValueError, match="frames"):
        reg.timeseries("q.depth", unit="bytes")
    # Empty unit is a wildcard lookup; a concrete unit fills a blank one.
    assert reg.timeseries("q.depth").unit == "frames"
    bare = reg.timeseries("later")
    assert bare.unit == ""
    assert reg.timeseries("later", unit="ns") is bare
    assert bare.unit == "ns"


def test_registry_value_and_peek_never_create():
    reg = MetricsRegistry()
    assert reg.peek("ghost") is None
    assert reg.value("ghost") == 0.0
    assert reg.value("ghost", default=-1.0) == -1.0
    assert list(reg.snapshot()) == []  # reads left no trace
    reg.counter("hits").inc(3.0)
    assert reg.value("hits") == 3.0
    assert reg.peek("hits").value == 3.0
