"""Metrics-layer tests: instrument semantics and percentile accuracy."""

import math
import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert c.as_dict() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_extremes():
    g = Gauge("depth")
    assert g.as_dict() == {"value": 0.0, "high_water": 0.0, "low_water": 0.0, "samples": 0}
    g.set(3)
    g.inc()
    g.dec(5)
    assert g.value == -1
    assert g.high_water == 4
    assert g.low_water == -1
    assert g.samples == 3


def _oracle_percentile(samples, p):
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("p", [50, 95, 99])
def test_histogram_percentiles_vs_sorted_oracle(seed, p):
    """Every percentile estimate must be within the documented relative
    error bound (one bucket's growth factor) of the sorted-list oracle."""
    rng = random.Random(seed)
    hist = Histogram(growth=1.05)
    samples = [rng.lognormvariate(8, 1.5) for _ in range(5000)]
    for s in samples:
        hist.record(s)
    exact = _oracle_percentile(samples, p)
    approx = hist.percentile(p)
    assert exact / hist.growth <= approx <= exact * hist.growth
    # Exact moments are exact, not bucketed.
    assert hist.count == len(samples)
    assert hist.total == pytest.approx(sum(samples))
    assert hist.minimum == min(samples)
    assert hist.maximum == max(samples)


def test_histogram_underflow_and_edges():
    hist = Histogram()
    assert hist.percentile(50) == 0.0
    for v in (-5.0, 0.0, 10.0, 20.0):
        hist.record(v)
    assert hist.count == 4
    # The low percentiles come from the underflow bucket.
    assert hist.percentile(25) == -5.0
    assert hist.percentile(100) <= hist.maximum
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    d = hist.as_dict()
    assert d["count"] == 4 and d["min"] == -5.0 and d["max"] == 20.0


def test_histogram_single_sample_all_percentiles():
    hist = Histogram()
    hist.record(123.0)
    for p in (0, 50, 99, 100):
        assert hist.percentile(p) == 123.0


def test_histogram_percentile_exact_extremes():
    """p=0 / p=100 return the exact tracked min/max, not the nearest
    bucket boundary — including a negative minimum from the underflow
    bucket."""
    hist = Histogram()
    for v in (-7.5, 1.0, 2.0, 3.0, 1e6):
        hist.record(v)
    assert hist.percentile(0) == -7.5
    assert hist.percentile(100) == 1e6
    # Interior percentiles still go through the bucket approximation.
    assert -7.5 <= hist.percentile(50) <= 1e6


def test_histogram_empty_every_percentile_is_zero():
    hist = Histogram()
    for p in (0, 50, 100):
        assert hist.percentile(p) == 0.0


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c = reg.counter("a.count")
    assert reg.counter("a.count") is c
    reg.gauge("a.depth")
    reg.histogram("a.lat_ns")
    assert len(reg) == 3
    with pytest.raises(TypeError, match="gauge"):
        reg.counter("a.depth")
    assert reg.peek("nope") is None
    reg.discard("a.depth")
    reg.discard("a.depth")  # idempotent
    assert len(reg) == 2


def test_registry_snapshot_sorted_and_typed():
    reg = MetricsRegistry()
    reg.counter("z").inc(2)
    reg.histogram("a").record(10.0)
    snap = reg.snapshot()
    assert list(snap) == ["a", "z"]
    assert snap["z"] == 2
    assert snap["a"]["count"] == 1
    reg.reset()
    assert len(reg) == 0
