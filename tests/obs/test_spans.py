"""Span-layer tests: parenting, lookups, null path, and determinism."""

import pytest

from repro.obs import NULL_SPAN, Tracer
from repro.sim import Environment, Trace


def make_tracer(enabled=True):
    env = Environment()
    trace = Trace(enabled=enabled)
    return env, trace, Tracer(env, trace)


def test_spans_nest_within_one_process():
    env, trace, tracer = make_tracer()

    def proc():
        outer = tracer.begin("node0.kernel", "syscall", label="send")
        inner = tracer.begin("node0.clic", "clic_send")
        yield env.timeout(10)
        inner.end()
        yield env.timeout(5)
        outer.end()

    env.process(proc(), name="p")
    env.run()
    outer, inner = tracer.find(name="syscall")[0], tracer.find(name="clic_send")[0]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.start_ns == 0 and inner.end_ns == 10
    assert outer.duration_ns == 15
    # begin/end markers were mirrored into the flat trace.
    assert len(trace.by_event("span_begin")) == 2
    assert len(trace.by_event("span_end")) == 2


def test_concurrent_processes_do_not_cross_parent():
    """A span opened by one sim process must never parent a span opened
    by another process that merely runs while the first sleeps."""
    env, trace, tracer = make_tracer()

    def sleeper():
        span = tracer.begin("node0.kernel", "syscall")
        yield env.timeout(100)
        span.end()

    def interloper():
        yield env.timeout(50)
        span = tracer.begin("node0.eth0", "irq")
        yield env.timeout(10)
        span.end()

    env.process(sleeper(), name="a")
    env.process(interloper(), name="b")
    env.run()
    irq = tracer.find(name="irq")[0]
    assert irq.parent_id is None  # not the sleeping process's syscall


def test_disabled_tracer_returns_null_span():
    env, trace, tracer = make_tracer(enabled=False)
    span = tracer.begin("x", "y")
    assert span is NULL_SPAN
    span.annotate(a=1).end()
    tracer.instant("x", "z")
    assert tracer.spans == []
    assert tracer.instants("z") == []
    assert len(trace) == 0


def test_span_double_end_raises_and_open_spans():
    env, trace, tracer = make_tracer()
    span = tracer.begin("s", "n")
    assert tracer.open_spans == [span]
    span.end()
    assert tracer.open_spans == []
    with pytest.raises(ValueError, match="twice"):
        span.end()
    with pytest.raises(ValueError, match="open"):
        tracer.begin("s", "m").duration_ns


def test_lookups_and_containing():
    env, trace, tracer = make_tracer()

    def proc():
        a = tracer.begin("node1.eth0", "irq")
        yield env.timeout(10)
        tracer.instant("node1.eth0", "driver_rx", pkt=7)
        a.end()
        yield env.timeout(10)
        b = tracer.begin("node1.eth0", "irq")
        yield env.timeout(10)
        b.end()

    env.process(proc(), name="p")
    env.run()
    assert len(tracer.find(scope="node1.eth0", name="irq")) == 2
    assert tracer.find(scope_prefix="node1", name="irq")[0].start_ns == 0
    assert tracer.first(name="nonexistent") is None
    inst = tracer.first_instant("driver_rx", pkt=7)
    assert inst.time == 10
    assert tracer.first_instant("driver_rx", pkt=8) is None
    hit = tracer.containing(25, name="irq")
    assert hit.start_ns == 20
    assert tracer.containing(15, name="irq") is None


def test_same_seed_runs_are_byte_identical():
    """Two identical fig7 captures must produce identical span streams
    and byte-identical Chrome exports (determinism acceptance check)."""
    from repro.experiments import fig7
    from repro.obs import chrome_trace_json, records_of, spans_of

    def one_run():
        cluster, pkt_id, timeline, done = fig7.capture(direct_rx=False)
        spans = spans_of(cluster.tracer)
        return spans, chrome_trace_json(spans, records_of(cluster.trace))

    spans_1, chrome_1 = one_run()
    spans_2, chrome_2 = one_run()
    assert spans_1 == spans_2
    assert chrome_1 == chrome_2
    assert len(spans_1) > 0
