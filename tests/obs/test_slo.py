"""SLO layer: objective kinds, path resolution, burn rates, scorecards."""

import pytest

from repro.obs import (
    OBJECTIVE_KINDS,
    SCORECARD_SCHEMA,
    SLO_SCHEMA,
    Objective,
    SLOSpec,
    evaluate,
    resolve_metric,
    scorecard_table,
)
from repro.obs.slo import burn_rate


def _spec(*objectives, name="test"):
    return SLOSpec(name=name, objectives=tuple(objectives))


def test_objective_kind_validated():
    for kind in OBJECTIVE_KINDS:
        Objective("o", "a.b", kind, 1.0)
    with pytest.raises(ValueError, match="kind"):
        Objective("o", "a.b", "target", 1.0)


def test_objective_round_trip_drops_defaults():
    o = Objective("p99", "result.p99_us", "ceiling", 2000.0)
    d = o.to_dict()
    assert "window_ns" not in d and "description" not in d
    assert Objective.from_dict(d) == o
    w = Objective("burn", "timeseries.q", "burn_rate", 5.0,
                  window_ns=1e6, description="queue growth")
    assert Objective.from_dict(w.to_dict()) == w


def test_spec_round_trip_and_duplicate_names():
    spec = _spec(Objective("a", "x", "ceiling", 1.0),
                 Objective("b", "y", "floor", 2.0))
    assert len(spec) == 2
    assert spec.to_dict()["schema"] == SLO_SCHEMA
    assert SLOSpec.from_json(spec.to_json()) == spec
    with pytest.raises(ValueError, match="duplicate"):
        _spec(Objective("a", "x", "ceiling", 1.0),
              Objective("a", "y", "floor", 2.0))
    with pytest.raises(ValueError, match="schema"):
        SLOSpec.from_dict({"schema": "bogus/9", "name": "n"})


def test_resolve_metric_longest_prefix_wins():
    doc = {
        "metrics": {
            "node0.kernel.syscall_ns": {"p99": 1800.0},
            "node0": {"decoy": True},
        },
        "result": {"latency": {"p99_us": 42.0}},
    }
    assert resolve_metric(doc, "metrics.node0.kernel.syscall_ns.p99") == 1800.0
    assert resolve_metric(doc, "result.latency.p99_us") == 42.0
    assert resolve_metric(doc, "result.latency.p999_us") is None
    assert resolve_metric(doc, "nowhere.at.all") is None


def test_burn_rate_windowed_and_total():
    # Rise of 30 over the 1000ns window dominates the early slow climb.
    pts = [[0.0, 0.0], [1000.0, 5.0], [2000.0, 10.0], [3000.0, 40.0]]
    assert burn_rate(pts, window_ns=1000.0) == pytest.approx(30.0 * 1e9 / 1000.0)
    # No window: total rise over total span.
    assert burn_rate(pts) == pytest.approx(40.0 * 1e9 / 3000.0)
    # Draining burns nothing; short series burn nothing.
    assert burn_rate([[0.0, 10.0], [1000.0, 2.0]]) == 0.0
    assert burn_rate([[0.0, 1.0]]) == 0.0


def test_evaluate_kinds_and_margins():
    doc = {"result": {"delivered": 100.0, "p99_us": 1500.0, "drops": 2.0}}
    card = evaluate(_spec(
        Objective("delivered", "result.delivered", "floor", 100.0),
        Objective("p99", "result.p99_us", "ceiling", 2000.0),
        Objective("loss", "result.drops", "budget", 0.0),
    ), doc)
    assert card["schema"] == SCORECARD_SCHEMA
    assert not card["ok"]
    assert card["violations"] == ["loss"]
    by_name = {r["name"]: r for r in card["objectives"]}
    assert by_name["delivered"]["margin"] == 0.0  # floor met exactly
    assert by_name["p99"]["margin"] == 500.0
    assert by_name["loss"]["status"] == "violated"
    assert by_name["loss"]["margin"] == -2.0


def test_evaluate_missing_metric_is_violation():
    card = evaluate(_spec(
        Objective("ghost", "metrics.never.recorded", "ceiling", 1.0)), {})
    assert not card["ok"]
    assert card["objectives"][0]["status"] == "missing"
    assert card["objectives"][0]["value"] is None
    # A non-scalar at the path is just as missing as no value at all.
    card = evaluate(_spec(
        Objective("odd", "x", "ceiling", 1.0)), {"x": {"nested": 1}})
    assert card["objectives"][0]["status"] == "missing"


def test_evaluate_burn_rate_reads_timeseries_dict():
    doc = {"timeseries": {"nic.rx_depth": {
        "unit": "frames",
        "points": [[0.0, 0.0], [1_000_000.0, 10.0]],
    }}}
    card = evaluate(_spec(
        Objective("burn", "timeseries.nic.rx_depth", "burn_rate",
                  threshold=20_000.0, window_ns=1_000_000.0)), doc)
    row = card["objectives"][0]
    assert row["value"] == pytest.approx(10.0 * 1e9 / 1e6)  # 10k/s
    assert row["ok"]


def test_scorecard_table_lists_violations_first():
    doc = {"result": {"a": 5.0, "b": 1.0}}
    card = evaluate(_spec(
        Objective("fine", "result.b", "ceiling", 2.0),
        Objective("broken", "result.a", "ceiling", 2.0)), doc)
    table = scorecard_table(card)
    assert "FAIL (1 violated)" in table
    assert table.index("broken") < table.index("fine")
    assert "VIOLATED" in table
