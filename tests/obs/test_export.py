"""Exporter tests: Chrome trace golden file, RunArtifact, jsonable."""

import json
import os

import pytest

from repro.obs import (
    RUN_SCHEMA,
    RUN_SCHEMA_V1,
    RunArtifact,
    chrome_trace_events,
    chrome_trace_json,
    jsonable,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_chrome.json")

SPANS = [
    {"id": 1, "scope": "node0.kernel", "name": "syscall", "start_ns": 0.0,
     "end_ns": 4450.0, "parent": None, "attrs": {"label": "clic_send"}},
    {"id": 2, "scope": "node0.clic", "name": "clic_send", "start_ns": 350.0,
     "end_ns": 3250.0, "parent": 1, "attrs": {"dst": 1, "nbytes": 1400}},
    {"id": 3, "scope": "node1.eth0", "name": "irq", "start_ns": 56495.0,
     "end_ns": 74240.0, "parent": None, "attrs": {"drained": 1}},
]

RECORDS = [
    {"time": 3250.0, "source": "node0.eth0", "event": "driver_tx",
     "detail": {"pkt": 1, "nbytes": 1412}},
    {"time": 74240.0, "source": "node1.eth0", "event": "driver_rx",
     "detail": {"pkt": 1, "t0": 56495.0, "nbytes": 1412}},
    {"time": 100.0, "source": "node0.kernel", "event": "span_begin",
     "detail": {"span": 9}},
]


def test_chrome_export_matches_golden_file():
    """The exporter's output format is a contract: byte-compare against
    the checked-in golden document."""
    got = chrome_trace_json(SPANS, RECORDS, indent=2)
    with open(GOLDEN) as fh:
        want = fh.read().rstrip("\n")
    assert got == want


def test_chrome_events_structure():
    events = chrome_trace_events(SPANS, RECORDS)
    doc = json.loads(chrome_trace_json(SPANS, RECORDS))
    assert doc["traceEvents"] == jsonable(events)
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 3
    # span bookkeeping records are not re-exported as instants
    assert len(instants) == 2
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    # timestamps are microseconds
    syscall = next(e for e in complete if e["name"] == "syscall")
    assert syscall["ts"] == 0.0 and syscall["dur"] == 4.45
    # pid/tid assignment is deterministic: sorted first-appearance
    assert chrome_trace_events(SPANS, RECORDS) == events
    # parent ids surface in args
    child = next(e for e in complete if e["name"] == "clic_send")
    assert child["args"]["parent"] == 1 and child["args"]["span"] == 2


def test_run_artifact_round_trip(tmp_path):
    art = RunArtifact(
        experiment="fig7",
        result={"total_us": 84.9},
        metrics={"node0.kernel.syscalls": 2},
        profile={"events_processed": 10},
        spans=SPANS,
        records=RECORDS,
    )
    path = tmp_path / "run.json"
    art.write(str(path))
    loaded = RunArtifact.load(str(path))
    assert loaded == art
    assert loaded.schema == RUN_SCHEMA
    # An artifact loaded from disk can still export Chrome JSON.
    assert json.loads(loaded.chrome_json())["traceEvents"]


def test_run_artifact_to_dict_is_a_fixed_point():
    """to_dict -> from_dict -> to_dict must be the identity, including
    the schema-2 profile field."""
    art = RunArtifact(
        experiment="fig7",
        result={"total_us": 84.9},
        profile={"events_processed": 10, "per_type": {"timer": 4}},
        spans=SPANS,
        records=RECORDS,
    )
    once = art.to_dict()
    twice = RunArtifact.from_dict(once).to_dict()
    assert once == twice
    assert once["schema"] == RUN_SCHEMA
    assert once["profile"]["per_type"] == {"timer": 4}


def test_run_artifact_loads_schema_v1():
    """Pre-profile artifacts (schema v1) load and upgrade in place."""
    art = RunArtifact.from_dict({
        "schema": RUN_SCHEMA_V1, "experiment": "fig7",
        "result": {"total_us": 84.9},
    })
    assert art.schema == RUN_SCHEMA  # upgraded on load
    assert art.profile == {}
    assert art.result["total_us"] == 84.9


def test_chrome_export_is_deterministic_across_runs():
    """Two identical seeded captures export byte-identical Chrome JSON
    (and artifact JSON) — the reproducibility contract of the tracer."""
    from repro.trace import capture_fig7

    a, b = capture_fig7(), capture_fig7()
    assert a.chrome_json() == b.chrome_json()
    assert a.to_json() == b.to_json()
    assert a.profile and a.profile == b.profile


def test_run_artifact_validation():
    with pytest.raises(ValueError, match="schema"):
        RunArtifact.from_dict({"schema": "bogus/9", "experiment": "x"})
    with pytest.raises(ValueError, match="experiment"):
        RunArtifact.from_dict({"schema": RUN_SCHEMA})
    with pytest.raises(ValueError, match="object"):
        RunArtifact.from_dict([1, 2])
    # Unknown keys are dropped, not fatal (forward compatibility).
    art = RunArtifact.from_dict(
        {"schema": RUN_SCHEMA, "experiment": "x", "future_field": 1}
    )
    assert art.experiment == "x"


def test_jsonable_sanitizes():
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int

    out = jsonable({
        1: (1, 2),
        "inf": float("inf"),
        "nan": float("nan"),
        "set": {3, 1},
        "dc": Point(x=4),
        "obj": object,
    })
    assert out["1"] == [1, 2]
    assert out["inf"] is None and out["nan"] is None
    assert out["set"] == [1, 3]
    assert out["dc"] == {"x": 4}
    assert isinstance(out["obj"], str)
    assert json.dumps(out)  # fully serializable
