"""Documentation guards: every public module, class and function in the
library carries a docstring (deliverable (e) of the reproduction)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, method in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: missing docstrings on {undocumented}"


def test_package_exposes_version():
    assert repro.__version__
