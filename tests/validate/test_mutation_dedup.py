"""Acceptance loop for the duplicate-suppression seam: a deliberately
broken receiver is caught by the fuzzer's adversarial-delivery axes,
shrunk to a minimal reproducer, and replayed bit-identically — while the
same artifact detects (by mismatching) a clean build.

The mutation no-ops :meth:`OrderedReceiver._already_delivered`, the seam
the receiver uses to recognize retransmitted / duplicated frames it has
already handed up.  Without it, stale copies are re-delivered to the
application, which the ``delivery.exactly_once`` invariant must flag
(the re-delivery usually drags ``delivery.in_order`` down with it).
Duplicate traffic comes from the ``duplicate`` fault family, so this is
also the end-to-end proof that the new fault axes actually exercise the
receiver's degraded-mode machinery.
"""

import json

import pytest

from repro.protocols.reliability import OrderedReceiver
from repro.validate.__main__ import main
from repro.validate.scenario import SCHEMA

#: wide enough to reach the seed-7 ``duplicate`` scenarios (indices 6, 9)
BUDGET = 10
SEED = 7


def _break_dedup():
    original = OrderedReceiver._already_delivered
    OrderedReceiver._already_delivered = lambda self, seq: False
    return original


@pytest.fixture(scope="module")
def dedup_campaign(tmp_path_factory):
    """One fuzz campaign run with duplicate suppression broken."""
    out = tmp_path_factory.mktemp("replays")
    original = _break_dedup()
    try:
        rc = main(["fuzz", "--budget", str(BUDGET), "--seed", str(SEED),
                   "--out", str(out)])
    finally:
        OrderedReceiver._already_delivered = original
    return rc, sorted(out.glob("REPLAY_*.json"))


def test_mutation_is_caught(dedup_campaign):
    rc, artifacts = dedup_campaign
    assert rc == 1
    assert artifacts, "no failing scenario found the dedup mutation"


def test_every_failure_includes_exactly_once(dedup_campaign):
    """Re-delivery cascades (order, acks, byte counts), but the headline
    invariant must be present in every reproducer."""
    _, artifacts = dedup_campaign
    for path in artifacts:
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["violations"], path.name
        assert "delivery.exactly_once" in {
            v["invariant"] for v in doc["violations"]
        }, path.name


def test_failures_were_shrunk_to_minimal_reproducers(dedup_campaign):
    _, artifacts = dedup_campaign
    for path in artifacts:
        doc = json.loads(path.read_text())
        # a single message under a duplication fault is enough to
        # re-deliver a retransmitted frame
        assert len(doc["scenario"]["messages"]) <= 2, path.name


def test_replay_reproduces_bit_identically_under_the_mutation(dedup_campaign, capsys):
    _, artifacts = dedup_campaign
    original = _break_dedup()
    try:
        rc = main(["replay", str(artifacts[0])])
    finally:
        OrderedReceiver._already_delivered = original
    assert rc == 0
    assert "bit-identically" in capsys.readouterr().out


def test_replay_detects_the_fix_on_a_clean_build(dedup_campaign, capsys):
    """Same artifact, mutation reverted: the violation must be gone and
    replay must say so (exit 1, mismatch) — the fix-verification flow."""
    _, artifacts = dedup_campaign
    rc = main(["replay", str(artifacts[0])])
    assert rc == 1
    assert "MISMATCH" in capsys.readouterr().out
