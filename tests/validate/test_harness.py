"""End-to-end harness checks: the fuzzer is clean on main and
bit-deterministic, and the CLI agrees."""

import json

import pytest

from repro.validate import generate_scenario, run_scenario
from repro.validate.__main__ import main


def _report(master_seed, index):
    return run_scenario(generate_scenario(master_seed, index).to_dict())


@pytest.mark.parametrize("index", range(12))
def test_fuzz_scenarios_hold_all_invariants_on_main(index):
    report = _report(7, index)
    assert report["violations"] == [], report["violations"]
    # the scenario actually exercised the stack
    assert report["stats"]["frames_offered"] > 0
    assert report["stats"]["channels"] >= 1


def test_reports_are_bit_deterministic():
    spec = generate_scenario(7, 3).to_dict()
    a, b = run_scenario(spec), run_scenario(spec)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_permanent_fault_scenario_converges_to_peer_death():
    """Find a generated peer-death case and check it ends in dead peers
    with zero violations (the retry budget converges)."""
    from repro.validate import Scenario

    for index in range(40):
        scenario = generate_scenario(7, index)
        if scenario.permanent_fault:
            break
    else:
        pytest.skip("no permanent-fault scenario in the first 40")
    report = run_scenario(scenario.to_dict())
    assert report["violations"] == []


def test_cli_fuzz_clean_campaign(tmp_path, capsys):
    rc = main(["fuzz", "--budget", "6", "--seed", "11", "--out", str(tmp_path)])
    assert rc == 0
    assert list(tmp_path.glob("REPLAY_*.json")) == []
    out = capsys.readouterr().out
    assert "0 failing" in out


def test_cli_replay_rejects_unknown_schema(tmp_path, capsys):
    bogus = tmp_path / "REPLAY_bogus.json"
    bogus.write_text(json.dumps({"schema": "repro.validate/999"}))
    assert main(["replay", str(bogus)]) == 2
