"""Fixtures for the invariant-harness tests: fabricated run records.

``clean_record`` builds the smallest internally-consistent run record —
one 1000-byte message over ``0->1``, one data frame and one ack frame
per direction, balanced counters everywhere — that the full invariant
catalog passes.  Individual tests then break exactly one fact and
assert exactly the right invariant fires.
"""

import copy

import pytest

from repro.validate import Message, Scenario


def make_sender_state(**overrides):
    state = {
        "name": "clic0->1",
        "next_seq": 1,
        "base": 1,
        "in_flight": 0,
        "failed": False,
        "registered": 1,
        "max_in_flight": 1,
        "window_violations": [],
        "events": [
            ["register", 0],
            ["rtt", 0, 12_000.0],
            ["ack", 0, 1],
        ],
    }
    state.update(overrides)
    return state


def make_receiver_state(**overrides):
    state = {
        "name": "clic0->1",
        "expected": 1,
        "delivered": 1,
        "delivered_seqs": [0],
        "max_stash": 0,
        "stash_limit": 64,
        "acks_emitted": [1],
    }
    state.update(overrides)
    return state


def make_record(**overrides):
    scenario = Scenario(seed=11, messages=(Message(0, 1, 1000, 0),))
    record = {
        "scenario": scenario.to_dict(),
        "channels": {
            "0->1": {
                "sender": make_sender_state(),
                "receiver": make_receiver_state(),
                "attempted": [[0, 1000]],
                "sent": [[0, 1000]],
                "received": [[0, 1000]],
            }
        },
        "frames": {
            "links": {
                "0.0.up": _link(1),    # the data frame
                "1.0.up": _link(1),    # the ack frame
                "0.0.down": _link(1),  # ack delivered to node 0
                "1.0.down": _link(1),  # data delivered to node 1
            },
            "nic": {"tx_frames": 2, "rx_frames": 2, "rx_crc_drops": 0,
                    "rx_oversize_drops": 0, "rx_drops": 0,
                    "rx_buffer_peak": 1, "rx_ring_slots": 256},
            "switch": {"forwarded": 2, "drops": 0, "blackout_drops": 0,
                       "unknown_dst": 0, "hairpin_dropped": 0,
                       "pause_events": 0, "pause_time_ns": 0.0,
                       "max_queue_depth": 1, "queue_capacity": 512},
        },
        "final_now": 5_000_000.0,
        "procs_unfinished": [],
        "dead_peers": {},
        "modules": {
            "0": {"msgs_sent": 1, "bytes_sent": 1000, "msgs_rx": 0, "bytes_rx": 0},
            "1": {"msgs_sent": 0, "bytes_sent": 0, "msgs_rx": 1, "bytes_rx": 1000},
        },
    }
    record.update(overrides)
    return record


def _link(frames, lost=0, corrupted=0, duplicated=0):
    return {
        "frames_offered": frames + lost - duplicated,
        "frames": frames,
        "frames_lost": lost,
        "frames_corrupted": corrupted,
        "frames_duplicated": duplicated,
    }


@pytest.fixture
def clean_record():
    return make_record()


@pytest.fixture
def record_factory():
    """Deep-copying factory so tests can mutate freely."""

    def make(**overrides):
        return copy.deepcopy(make_record(**overrides))

    return make
