"""Unit tests for the invariant catalog over fabricated run records.

Each test takes the smallest internally-consistent record (see
``conftest.make_record``), breaks exactly one fact, and asserts the
matching invariant — and only it — fires.
"""

import pytest

from repro.validate import INVARIANTS, Violation, check_run
from repro.validate.scenario import FOREVER_NS

from .conftest import _link, make_sender_state


def ids(violations):
    return [v.invariant for v in violations]


def test_clean_record_passes_whole_catalog(clean_record):
    assert check_run(clean_record) == []


def test_catalog_is_stable():
    assert len(INVARIANTS) == 13
    assert len(set(INVARIANTS)) == len(INVARIANTS)


def test_violation_round_trips():
    v = Violation("rto.karn", "0->1", "sampled seq 3 after retransmit")
    assert Violation.from_dict(v.to_dict()) == v


# ---------------------------------------------------------------------------
# delivery.exactly_once_in_order
# ---------------------------------------------------------------------------
def test_delivery_reordered(record_factory):
    record = record_factory()
    ch = record["channels"]["0->1"]
    ch["attempted"] = ch["sent"] = [[0, 1000], [1, 500]]
    ch["received"] = [[1, 500], [0, 1000]]
    record["modules"]["0"].update(msgs_sent=2, bytes_sent=1500)
    record["modules"]["1"].update(msgs_rx=2, bytes_rx=1500)
    assert ids(check_run(record)) == ["delivery.exactly_once_in_order"]


def test_delivery_duplicated(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["received"] = [[0, 1000], [0, 1000]]
    assert "delivery.exactly_once_in_order" in ids(check_run(record))


def test_delivery_lost(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["received"] = []
    assert "delivery.exactly_once_in_order" in ids(check_run(record))


def test_delivery_sent_not_prefix_of_attempted(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sent"] = [[9, 1]]
    assert "delivery.exactly_once_in_order" in ids(check_run(record))


def test_failed_channel_must_deliver_a_prefix(record_factory):
    record = record_factory()
    scenario = record["scenario"]
    scenario["fault_kind"] = "outage"
    scenario["fault_args"] = {"start_ns": 1.0, "duration_ns": FOREVER_NS, "node": 1}
    ch = record["channels"]["0->1"]
    ch["sender"]["failed"] = True
    ch["sender"]["in_flight"] = 1
    ch["sender"]["next_seq"] = 2
    ch["sender"]["registered"] = 2
    ch["attempted"] = ch["sent"] = [[0, 1000], [1, 500]]
    record["dead_peers"] = {"0": {"1": "no ack"}}
    record["modules"]["0"] = {
        "msgs_sent": 2, "bytes_sent": 1500, "msgs_rx": 0, "bytes_rx": 0}

    ch["received"] = [[0, 1000]]  # strict prefix: fine
    assert check_run(record) == []

    ch["received"] = [[1, 500]]  # not a prefix: the receiver skipped ahead
    assert "delivery.exactly_once_in_order" in ids(check_run(record))


# ---------------------------------------------------------------------------
# delivery.exactly_once / delivery.in_order (channel-sequence level)
# ---------------------------------------------------------------------------
def test_seq_delivered_twice(record_factory):
    record = record_factory()
    rx = record["channels"]["0->1"]["receiver"]
    rx["delivered_seqs"] = [0, 1, 1]
    rx["delivered"] = 3
    rx["expected"] = 2
    rx["acks_emitted"] = [2]
    got = ids(check_run(record))
    assert "delivery.exactly_once" in got
    assert "delivery.in_order" in got  # a repeat also regresses the order


def test_seq_delivered_out_of_order(record_factory):
    record = record_factory()
    rx = record["channels"]["0->1"]["receiver"]
    rx["delivered_seqs"] = [1, 0]
    rx["delivered"] = 2
    rx["expected"] = 2
    rx["acks_emitted"] = [2]
    got = ids(check_run(record))
    assert "delivery.in_order" in got
    assert "delivery.exactly_once" not in got


def test_gappy_but_increasing_seqs_pass_in_order(record_factory):
    """Order and uniqueness are judged, not contiguity — a failed
    channel legitimately delivers a prefix with later seqs missing."""
    record = record_factory()
    rx = record["channels"]["0->1"]["receiver"]
    rx["delivered_seqs"] = [0]
    assert check_run(record) == []


def test_record_without_delivered_seqs_skips_the_rules(record_factory):
    record = record_factory()
    del record["channels"]["0->1"]["receiver"]["delivered_seqs"]
    assert check_run(record) == []


# ---------------------------------------------------------------------------
# memory.bounded
# ---------------------------------------------------------------------------
def test_stash_overran_its_limit(record_factory):
    record = record_factory()
    rx = record["channels"]["0->1"]["receiver"]
    rx["max_stash"] = 65
    rx["stash_limit"] = 64
    assert ids(check_run(record)) == ["memory.bounded"]


def test_stash_at_limit_is_legal(record_factory):
    record = record_factory()
    rx = record["channels"]["0->1"]["receiver"]
    rx["max_stash"] = 64
    rx["stash_limit"] = 64
    assert check_run(record) == []


def test_switch_queue_overran_capacity(record_factory):
    record = record_factory()
    record["frames"]["switch"]["max_queue_depth"] = 513
    assert ids(check_run(record)) == ["memory.bounded"]


def test_nic_rx_buffer_overran_ring(record_factory):
    record = record_factory()
    record["frames"]["nic"]["rx_buffer_peak"] = 257
    assert ids(check_run(record)) == ["memory.bounded"]


def test_memory_bounds_checked_even_when_unconverged(record_factory):
    record = record_factory()
    record["procs_unfinished"] = [{"name": "fuzz-tx0", "node": 0, "role": "tx"}]
    record["frames"]["switch"]["max_queue_depth"] = 513
    got = ids(check_run(record))
    assert "memory.bounded" in got
    assert "sim.convergence" in got


# ---------------------------------------------------------------------------
# delivery.bytes_conserved
# ---------------------------------------------------------------------------
def test_module_counter_disagrees_with_journal(record_factory):
    record = record_factory()
    record["modules"]["0"]["bytes_sent"] = 999
    assert ids(check_run(record)) == ["delivery.bytes_conserved"]


def test_phantom_receive_counted(record_factory):
    record = record_factory()
    record["modules"]["1"]["msgs_rx"] = 2
    assert ids(check_run(record)) == ["delivery.bytes_conserved"]


# ---------------------------------------------------------------------------
# acks.monotone
# ---------------------------------------------------------------------------
def test_ack_regression_at_sender(record_factory):
    record = record_factory()
    sender = record["channels"]["0->1"]["sender"]
    sender["events"] = [["register", 0], ["ack", 0, 1], ["ack", 1, 1]]
    assert "acks.monotone" in ids(check_run(record))


def test_ack_skips_base(record_factory):
    record = record_factory()
    sender = record["channels"]["0->1"]["sender"]
    sender["events"] = [["register", 0], ["ack", 5, 6]]
    assert "acks.monotone" in ids(check_run(record))


def test_final_base_mismatch(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"] = [["register", 0]]
    assert "acks.monotone" in ids(check_run(record))


def test_receiver_acks_go_backwards(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["receiver"]["acks_emitted"] = [1, 0]
    assert "acks.monotone" in ids(check_run(record))


def test_receiver_acks_beyond_frontier(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["receiver"]["acks_emitted"] = [2]
    assert "acks.monotone" in ids(check_run(record))


def test_sender_base_overtakes_receiver(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["receiver"]["expected"] = 0
    record["channels"]["0->1"]["receiver"]["acks_emitted"] = []
    assert "acks.monotone" in ids(check_run(record))


# ---------------------------------------------------------------------------
# channel.bookkeeping / window.respected
# ---------------------------------------------------------------------------
def test_window_ledger_imbalance(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["in_flight"] = 3
    violations = ids(check_run(record))
    assert "channel.bookkeeping" in violations
    # in_flight > 0 without failure also means the run never drained
    assert "sim.convergence" in violations


def test_registration_count_mismatch(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["registered"] = 7
    assert "channel.bookkeeping" in ids(check_run(record))


def test_window_overshoot(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["window_violations"] = [[65, 64]]
    assert ids(check_run(record)) == ["window.respected"]


# ---------------------------------------------------------------------------
# rto.karn / rto.bounds
# ---------------------------------------------------------------------------
def test_karn_rtt_after_retransmit(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"] = [
        ["register", 0],
        ["retx", "rto", [0]],
        ["rtt", 0, 9_000.0],
        ["ack", 0, 1],
    ]
    assert ids(check_run(record)) == ["rto.karn"]


def test_karn_fast_retransmit_counts_too(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"] = [
        ["register", 0],
        ["retx", "fast", [0]],
        ["rtt", 0, 9_000.0],
        ["ack", 0, 1],
    ]
    assert ids(check_run(record)) == ["rto.karn"]


def test_rtt_before_retransmit_is_legal(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"] = [
        ["register", 0],
        ["rtt", 0, 9_000.0],
        ["retx", "rto", [0]],
        ["ack", 0, 1],
    ]
    assert check_run(record) == []


def test_rto_shrinks_on_timeout(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"].insert(
        1, ["timeout", 20_000.0, 10_000.0, 1_000_000.0])
    assert ids(check_run(record)) == ["rto.bounds"]


def test_rto_exceeds_cap(record_factory):
    record = record_factory()
    record["channels"]["0->1"]["sender"]["events"].insert(
        1, ["timeout", 20_000.0, 2_000_000.0, 1_000_000.0])
    assert ids(check_run(record)) == ["rto.bounds"]


# ---------------------------------------------------------------------------
# peer_death.convergence
# ---------------------------------------------------------------------------
def test_failure_under_transient_fault_is_a_bug(record_factory):
    record = record_factory()
    record["scenario"]["fault_kind"] = "uniform"
    record["scenario"]["fault_rate"] = 0.1
    ch = record["channels"]["0->1"]
    ch["sender"]["failed"] = True
    ch["received"] = []
    record["dead_peers"] = {"0": {"1": "no ack"}}
    got = ids(check_run(record))
    # failed channel + dead peer, both under a survivable fault
    assert got.count("peer_death.convergence") == 2


def test_failure_not_crossing_fault_node(record_factory):
    record = record_factory()
    record["scenario"]["fault_kind"] = "outage"
    record["scenario"]["fault_args"] = {
        "start_ns": 1.0, "duration_ns": FOREVER_NS, "node": 3}
    ch = record["channels"]["0->1"]
    ch["sender"]["failed"] = True
    ch["received"] = []
    record["dead_peers"] = {"0": {"1": "no ack"}}
    got = ids(check_run(record))
    assert got.count("peer_death.convergence") == 2


def test_failed_sender_without_dead_peer_declaration(record_factory):
    record = record_factory()
    record["scenario"]["fault_kind"] = "outage"
    record["scenario"]["fault_args"] = {
        "start_ns": 1.0, "duration_ns": FOREVER_NS, "node": 1}
    ch = record["channels"]["0->1"]
    ch["sender"]["failed"] = True
    ch["received"] = []
    assert "peer_death.convergence" in ids(check_run(record))


# ---------------------------------------------------------------------------
# sim.convergence (and its gating of frames.conserved)
# ---------------------------------------------------------------------------
def test_unfinished_process(record_factory):
    record = record_factory()
    record["procs_unfinished"] = [{"name": "fuzz-tx0", "node": 0, "role": "tx"}]
    assert ids(check_run(record)) == ["sim.convergence"]


def test_receiver_cut_off_by_failed_channel_may_block(record_factory):
    record = record_factory()
    record["scenario"]["fault_kind"] = "outage"
    record["scenario"]["fault_args"] = {
        "start_ns": 1.0, "duration_ns": FOREVER_NS, "node": 1}
    ch = record["channels"]["0->1"]
    ch["sender"]["failed"] = True
    ch["received"] = []
    record["modules"]["1"].update(msgs_rx=0, bytes_rx=0)
    record["dead_peers"] = {"0": {"1": "no ack"}}
    record["procs_unfinished"] = [{"name": "fuzz-rx1", "node": 1, "role": "rx"}]
    assert check_run(record) == []


def test_frames_not_judged_while_unconverged(record_factory):
    record = record_factory()
    record["procs_unfinished"] = [{"name": "fuzz-tx0", "node": 0, "role": "tx"}]
    record["frames"]["nic"]["tx_frames"] = 99  # would violate frames.conserved
    assert ids(check_run(record)) == ["sim.convergence"]


# ---------------------------------------------------------------------------
# frames.conserved
# ---------------------------------------------------------------------------
def test_link_bookkeeping_broken(record_factory):
    record = record_factory()
    record["frames"]["links"]["0.0.up"]["frames_lost"] = 1  # offered stays 1
    got = ids(check_run(record))
    assert "frames.conserved" in got


def test_frame_vanishes_between_nic_and_wire(record_factory):
    record = record_factory()
    record["frames"]["nic"]["tx_frames"] = 3
    assert ids(check_run(record)) == ["frames.conserved"]


def test_switch_forwarded_mismatch(record_factory):
    record = record_factory()
    record["frames"]["switch"]["forwarded"] = 1
    got = ids(check_run(record))
    assert got and set(got) == {"frames.conserved"}


def test_unknown_destination_is_a_wiring_bug(record_factory):
    record = record_factory()
    record["frames"]["switch"]["unknown_dst"] = 1
    assert "frames.conserved" in ids(check_run(record))


def test_duplicated_frames_balance(record_factory):
    """Conservation holds *net of counted duplicates*: an extra copy on
    the wire is fine as long as the link counted it."""
    record = record_factory()
    record["frames"]["links"]["1.0.down"] = _link(2, duplicated=1)
    record["frames"]["nic"]["rx_frames"] = 3
    assert check_run(record) == []


def test_uncounted_duplicate_is_a_violation(record_factory):
    record = record_factory()
    # an extra copy was delivered but frames_duplicated never moved
    record["frames"]["links"]["1.0.down"]["frames"] = 2
    assert "frames.conserved" in ids(check_run(record))


def test_lost_frames_are_conserved_not_violations(record_factory):
    """A lossy-but-converged run balances: loss shows up in the lost
    column of the link and the switch chain, not as a violation."""
    record = record_factory()
    links = record["frames"]["links"]
    # one extra data attempt that the wire ate, then a successful retx
    links["0.0.up"] = {"frames_offered": 2, "frames": 1,
                       "frames_lost": 1, "frames_corrupted": 0}
    record["frames"]["nic"]["tx_frames"] = 3
    record["channels"]["0->1"]["sender"]["events"] = [
        ["register", 0],
        ["retx", "rto", [0]],
        ["ack", 0, 1],
    ]
    assert check_run(record) == []
