"""The acceptance loop: a deliberately injected protocol bug is caught
by the fuzzer, shrunk to a minimal reproducer, and its ``REPLAY_*.json``
artifact reproduces the violation bit-identically — while the same
artifact detects (by mismatching) that a clean build no longer has the
bug.

The mutation disables Karn's rule: :meth:`WindowedSender._note_retransmitted`
is the seam the sender uses to quarantine retransmitted sequence numbers
from RTT sampling; no-opping it makes the estimator sample ambiguous
RTTs, which the ``rto.karn`` invariant must flag.
"""

import json

import pytest

from repro.protocols.reliability import WindowedSender
from repro.validate.__main__ import main
from repro.validate.scenario import SCHEMA

BUDGET = 6
SEED = 7


def _disable_karn():
    original = WindowedSender._note_retransmitted
    WindowedSender._note_retransmitted = lambda self, seqs: None
    return original


@pytest.fixture(scope="module")
def karn_campaign(tmp_path_factory):
    """One fuzz campaign run with Karn's rule disabled."""
    out = tmp_path_factory.mktemp("replays")
    original = _disable_karn()
    try:
        rc = main(["fuzz", "--budget", str(BUDGET), "--seed", str(SEED),
                   "--out", str(out)])
    finally:
        WindowedSender._note_retransmitted = original
    return rc, sorted(out.glob("REPLAY_*.json"))


def test_mutation_is_caught(karn_campaign):
    rc, artifacts = karn_campaign
    assert rc == 1
    assert artifacts, "no failing scenario found the Karn mutation"


def test_every_failure_is_the_karn_invariant(karn_campaign):
    _, artifacts = karn_campaign
    for path in artifacts:
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["violations"], path.name
        assert {v["invariant"] for v in doc["violations"]} == {"rto.karn"}


def test_failures_were_shrunk_to_minimal_reproducers(karn_campaign):
    _, artifacts = karn_campaign
    for path in artifacts:
        doc = json.loads(path.read_text())
        # generated scenarios carry up to 8 messages; a minimal Karn
        # reproducer needs only a message or two under loss
        assert len(doc["scenario"]["messages"]) <= 2, path.name


def test_replay_reproduces_bit_identically_under_the_mutation(karn_campaign, capsys):
    _, artifacts = karn_campaign
    original = _disable_karn()
    try:
        rc = main(["replay", str(artifacts[0])])
    finally:
        WindowedSender._note_retransmitted = original
    assert rc == 0
    assert "bit-identically" in capsys.readouterr().out


def test_replay_detects_the_fix_on_a_clean_build(karn_campaign, capsys):
    """Same artifact, mutation reverted: the violation must be gone and
    replay must say so (exit 1, mismatch) — the fix-verification flow."""
    _, artifacts = karn_campaign
    rc = main(["replay", str(artifacts[0])])
    assert rc == 1
    assert "MISMATCH" in capsys.readouterr().out
