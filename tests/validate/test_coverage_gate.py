"""The coverage gate: Cobertura parsing and floor enforcement."""

import pytest

from repro.validate.coverage_gate import coverage_by_file, main, rate

REPORT = """<?xml version="1.0" ?>
<coverage line-rate="0.5">
  <packages>
    <package name="repro">
      <classes>
        <class filename="repro/validate/invariants.py">
          <lines>
            <line number="1" hits="3"/>
            <line number="2" hits="1"/>
            <line number="3" hits="1"/>
            <line number="4" hits="1"/>
            <line number="5" hits="0"/>
          </lines>
        </class>
        <class filename="repro/hw/link.py">
          <lines>
            <line number="1" hits="1"/>
            <line number="2" hits="0"/>
            <line number="3" hits="0"/>
            <line number="4" hits="0"/>
          </lines>
        </class>
      </classes>
    </package>
  </packages>
</coverage>
"""


@pytest.fixture
def report(tmp_path):
    path = tmp_path / "coverage.xml"
    path.write_text(REPORT)
    return str(path)


def test_per_file_line_tallies(report):
    files = coverage_by_file(report)
    assert files["repro/validate/invariants.py"] == (4, 5)
    assert files["repro/hw/link.py"] == (1, 4)


def test_rate_filters_by_prefix(report):
    files = coverage_by_file(report)
    assert rate(files) == pytest.approx(100.0 * 5 / 9)
    assert rate(files, prefix="validate/") == pytest.approx(80.0)
    assert rate(files, prefix="nonexistent/") == 0.0


def test_gate_passes_when_floors_met(report, capsys):
    assert main([report, "--total-floor", "50", "--validate-floor", "75"]) == 0
    assert "coverage: total" in capsys.readouterr().out


def test_gate_fails_on_total_floor(report, capsys):
    assert main([report, "--total-floor", "60", "--validate-floor", "75"]) == 1
    assert "TOTAL below floor" in capsys.readouterr().out


def test_gate_fails_on_validate_floor(report, capsys):
    assert main([report, "--total-floor", "50", "--validate-floor", "90"]) == 1
    assert "repro/validate below floor" in capsys.readouterr().out


def test_gate_missing_report_is_an_error(tmp_path):
    assert main([str(tmp_path / "nope.xml")]) == 2
