"""The scenario generator: stability, serialization, fault compilation."""

import pytest

from repro.faults import FaultPlan
from repro.validate import Message, Scenario, generate_scenario
from repro.validate.scenario import FOREVER_NS


def test_generation_is_a_pure_function_of_seed_and_index():
    a = [generate_scenario(7, i).to_dict() for i in range(10)]
    b = [generate_scenario(7, i).to_dict() for i in range(10)]
    assert a == b


def test_indices_are_independent_streams():
    """Scenario i never depends on how many scenarios came before it."""
    assert generate_scenario(7, 5) == generate_scenario(7, 5)
    assert generate_scenario(7, 0) != generate_scenario(7, 1)
    assert generate_scenario(7, 0) != generate_scenario(8, 0)


def test_dict_round_trip():
    for i in range(20):
        s = generate_scenario(3, i)
        back = Scenario.from_dict(s.to_dict())
        assert back == s
        assert isinstance(back.messages[0], Message)


def test_traffic_shape():
    for i in range(50):
        s = generate_scenario(1, i)
        tags = {}
        for m in s.messages:
            assert 0 <= m.src < s.num_nodes
            assert 0 <= m.dst < s.num_nodes
            assert m.src != m.dst
            # tags increase per channel -> deliveries are matchable
            assert m.tag == tags.get((m.src, m.dst), 0)
            tags[(m.src, m.dst)] = m.tag + 1
        if s.protocol == "tcp":
            assert s.num_nodes == 2
            assert all(m.src == 0 and m.dst == 1 for m in s.messages)
            assert all(m.nbytes >= 1 for m in s.messages)
            assert not s.permanent_fault  # TCP skips the peer-death axis


def test_axes_are_actually_explored():
    scenarios = [generate_scenario(7, i) for i in range(40)]
    assert {s.protocol for s in scenarios} == {"clic", "tcp"}
    assert {s.mtu for s in scenarios} == {1500, 9000}
    assert {s.zero_copy for s in scenarios} == {True, False}
    assert len({s.fault_kind for s in scenarios}) >= 4


def test_fault_plan_compilation():
    none = Scenario(seed=1, fault_kind="none")
    assert none.fault_plan() is None

    uniform = Scenario(seed=1, fault_kind="uniform", fault_rate=0.05)
    assert uniform.fault_plan().default_link.loss_rate == 0.05

    burst = Scenario(seed=1, fault_kind="burst", fault_rate=0.03,
                     fault_args={"mean_burst_frames": 8.0})
    assert burst.fault_plan().default_link.burst is not None

    outage = Scenario(seed=1, fault_kind="outage",
                      fault_args={"start_ns": 10.0, "duration_ns": 20.0, "node": 1})
    plan = outage.fault_plan()
    assert set(plan.links) == {(1, 0, "up"), (1, 0, "down")}
    assert plan.links[(1, 0, "up")].outages[0].end_ns == 30.0

    flaps = Scenario(seed=1, fault_kind="flaps",
                     fault_args={"start_ns": 0.0, "duration_ns": 5.0,
                                 "up_ns": 5.0, "flaps": 3})
    assert len(flaps.fault_plan().links[(0, 0, "up")].outages) == 3

    blackout = Scenario(seed=1, fault_kind="blackout",
                        fault_args={"start_ns": 10.0, "duration_ns": 20.0, "node": 0})
    plan = blackout.fault_plan()
    assert isinstance(plan, FaultPlan) and len(plan.switch_blackouts) == 1

    with pytest.raises(ValueError):
        Scenario(seed=1, fault_kind="gremlins",
                 fault_args={"start_ns": 0.0, "duration_ns": 1.0}).fault_plan()


def test_permanent_fault_detection():
    dead = Scenario(seed=1, fault_kind="outage",
                    fault_args={"start_ns": 1.0, "duration_ns": FOREVER_NS})
    assert dead.permanent_fault
    transient = Scenario(seed=1, fault_kind="outage",
                         fault_args={"start_ns": 1.0, "duration_ns": 5e6})
    assert not transient.permanent_fault
    lossy = Scenario(seed=1, fault_kind="uniform", fault_rate=0.5)
    assert not lossy.permanent_fault


def test_flow_mode_axis_round_trips_and_is_drawn():
    """The flow_mode axis: defaults off, JSON round-trips, and the
    generator draws both engine modes across a campaign (drawn last so
    every other axis of a (seed, index) keeps its identity)."""
    assert Scenario(seed=1).flow_mode == "off"
    auto = Scenario(seed=1, flow_mode="auto")
    assert Scenario.from_dict(auto.to_dict()) == auto

    from repro.validate.scenario import generate_scenario

    modes = {generate_scenario(7, i).flow_mode for i in range(16)}
    assert modes == {"off", "auto"}


def test_runner_plumbs_flow_mode_into_the_cluster():
    """A flow-mode scenario builds its cluster with the hybrid engine
    armed — and still passes the whole invariant catalog."""
    from repro.validate.runner import run_scenario
    from repro.validate.scenario import Message

    scenario = Scenario(
        seed=99, protocol="clic", mtu=1500, flow_mode="auto",
        messages=(Message(0, 1, 40_000, 0), Message(0, 1, 40_000, 1)),
    )
    report = run_scenario(scenario.to_dict())
    assert report["violations"] == []
    assert report["scenario"]["flow_mode"] == "auto"
