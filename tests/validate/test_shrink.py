"""The shrinker, driven by synthetic failure predicates.

``run_fn`` is injected, so these tests shrink against pure predicates
instead of full simulations — fast, and they pin down the contract:
strictly decreasing cost, same invariant id preserved, deterministic
result, bounded run count.
"""

import pytest

from repro.validate import Message, Scenario, Violation, shrink


def predicate(check):
    """Wrap a boolean scenario predicate as a shrink run_fn."""

    def run_fn(scenario):
        if check(scenario):
            return [Violation("test.predicate", "synthetic", "still failing")]
        return []

    return run_fn


BIG = Scenario(
    seed=1,
    num_nodes=4,
    mtu=9000,
    zero_copy=False,
    window_frames=8,
    ack_every=2,
    fault_kind="uniform",
    fault_rate=0.1,
    messages=(
        Message(0, 1, 40_000, 0),
        Message(2, 3, 9000, 0),
        Message(1, 0, 20_000, 0),
        Message(0, 1, 1500, 1),
        Message(3, 2, 64, 0),
        Message(0, 1, 0, 2),
    ),
)
FAILING = [Violation("test.predicate", "synthetic", "seed failure")]


def test_shrinks_to_single_offending_message():
    # Fails whenever any message is >= 1000 bytes.
    run_fn = predicate(lambda s: any(m.nbytes >= 1000 for m in s.messages))
    result = shrink(BIG, FAILING, run_fn)
    assert len(result.scenario.messages) == 1
    # size-shrink pass floors the survivor at the smallest still-failing
    # candidate it tries (1024)
    assert result.scenario.messages[0].nbytes == 1024
    # unrelated axes return to their defaults
    assert result.scenario.mtu == 1500
    assert result.scenario.zero_copy is True
    assert result.scenario.fault_kind == "none"
    assert result.violations and result.violations[0].invariant == "test.predicate"


def test_shrink_is_deterministic():
    run_fn = predicate(lambda s: any(m.nbytes >= 1000 for m in s.messages))
    a = shrink(BIG, FAILING, run_fn)
    b = shrink(BIG, FAILING, run_fn)
    assert a.scenario == b.scenario
    assert a.runs == b.runs


def test_shrink_collapses_cluster_when_traffic_allows():
    run_fn = predicate(lambda s: any(m.src == 0 and m.dst == 1 for m in s.messages))
    result = shrink(BIG, FAILING, run_fn)
    assert result.scenario.num_nodes == 2
    assert len(result.scenario.messages) == 1


def test_shrink_keeps_fault_axis_when_it_matters():
    run_fn = predicate(lambda s: s.fault_kind == "uniform" and s.fault_rate > 0.04)
    result = shrink(BIG, FAILING, run_fn)
    assert result.scenario.fault_kind == "uniform"
    assert result.scenario.fault_rate > 0.04
    # traffic was irrelevant: collapsed to a single empty message (a
    # scenario always keeps at least one message)
    assert len(result.scenario.messages) == 1
    assert result.scenario.messages[0].nbytes == 0


def test_run_budget_is_respected():
    calls = []

    def run_fn(scenario):
        calls.append(scenario)
        return [Violation("test.predicate", "synthetic", "always fails")]

    result = shrink(BIG, FAILING, run_fn, max_runs=5)
    assert len(calls) <= 5
    assert result.runs <= 5


def test_shrink_requires_a_violation():
    with pytest.raises(ValueError):
        shrink(BIG, [], predicate(lambda s: True))


def test_unshrinkable_failure_returns_the_original():
    # Only the exact seed scenario fails: no reduction survives.
    run_fn = predicate(lambda s: s == BIG)
    result = shrink(BIG, FAILING, run_fn)
    assert result.scenario == BIG
    assert result.violations == FAILING
