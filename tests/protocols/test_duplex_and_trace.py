"""Full-duplex behaviour and trace-level conservation checks."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_JUMBO, granada2003
from repro.protocols.clic import ClicEndpoint
from repro.units import bandwidth_mbps


def test_bidirectional_streams_share_gracefully():
    """Simultaneous 2 MB streams in both directions: each direction's
    wire is independent (full duplex), so the slowdown versus
    unidirectional comes only from CPU/PCI contention — well under 2x."""

    def run(bidir: bool):
        cluster = Cluster(granada2003(mtu=MTU_JUMBO))
        n = 2_000_000
        done = {}

        def tx(src, dst, key):
            def body(proc):
                ep = ClicEndpoint(proc, 60)
                yield from ep.send(dst, n, tag=src)

            return body

        def rx(node_id, key):
            def body(proc):
                ep = ClicEndpoint(proc, 60)
                msg = yield from ep.recv()
                done[key] = proc.env.now

            return body

        cluster.nodes[0].spawn().run(tx(0, 1, "a"))
        procs = [cluster.nodes[1].spawn().run(rx(1, "fwd"))]
        if bidir:
            cluster.nodes[1].spawn().run(tx(1, 0, "b"))
            procs.append(cluster.nodes[0].spawn().run(rx(0, "rev")))
        cluster.env.run(cluster.env.all_of(procs))
        return max(done.values()), n

    uni_t, n = run(False)
    bi_t, _ = run(True)
    uni_bw = bandwidth_mbps(n, uni_t)
    bi_bw_aggregate = bandwidth_mbps(2 * n, bi_t)
    assert bi_bw_aggregate > uni_bw * 1.15  # duplex gives real extra capacity
    assert bi_t < uni_t * 2.0  # far better than serializing the two


def test_trace_conservation_every_tx_packet_received():
    """Every CLIC data packet the sender's driver posts shows up in the
    receiver's driver_rx trace exactly once (loss-free run)."""
    cluster = Cluster(granada2003(trace=True))

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        for i in range(3):
            yield from ep.send(1, 25_000, tag=i)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        for _ in range(3):
            yield from ep.recv()

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    d0, d1 = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([d0, d1]))

    tx_pkts = [
        r.detail["pkt"]
        for r in cluster.trace.records
        if r.event == "driver_tx" and r.source == "node0.eth0" and r.detail.get("nbytes", 0) > 100
    ]
    rx_pkts = [
        r.detail["pkt"]
        for r in cluster.trace.records
        if r.event == "driver_rx" and r.source == "node1.eth0" and r.detail.get("nbytes", 0) > 100
    ]
    assert sorted(tx_pkts) == sorted(rx_pkts)
    assert len(tx_pkts) == len(set(tx_pkts))  # no duplicates either


def test_mpi_heat_equation_example_logic():
    """The heat-equation example's core loop, as a regression test."""
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "heat", Path(__file__).parents[2] / "examples" / "mpi_heat_equation.py"
    )
    heat = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(heat)
    clic_ms = heat.run("clic", nodes=3)
    tcp_ms = heat.run("tcp", nodes=3)
    assert clic_ms > 0
    assert tcp_ms > clic_ms  # the paper's bottom line, as an app speedup
