"""Tests for the kernel-level control protocol (echo / aliveness)."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.protocols.clic import ClicControl, ClicEndpoint


def make_controls(cluster):
    return [ClicControl(node) for node in cluster.nodes]


def test_kernel_echo_returns_rtt():
    cluster = Cluster(granada2003())
    ctl = make_controls(cluster)
    rtts = []

    def body(proc):
        rtt = yield from ctl[0].echo(1)
        rtts.append(rtt)

    done = cluster.nodes[0].spawn().run(body)
    cluster.env.run(done)
    assert rtts[0] is not None and rtts[0] > 0
    assert ctl[1].counters.get("echo_served") == 1
    assert ctl[0].stats[1].received == 1
    assert ctl[0].stats[1].mean_rtt_ns == pytest.approx(rtts[0])


def test_kernel_echo_faster_than_process_pingpong():
    """The remote side never schedules a process: the kernel echo RTT
    must undercut a user-level 0-byte ping-pong round trip."""
    cluster = Cluster(granada2003())
    ctl = make_controls(cluster)
    out = {}

    # Kernel echo.
    def kecho(proc):
        # warmup + measured
        yield from ctl[0].echo(1)
        rtt = yield from ctl[0].echo(1)
        out["kernel"] = rtt

    done = cluster.nodes[0].spawn().run(kecho)
    cluster.env.run(done)

    # User-level ping-pong on a fresh identical cluster.
    from repro.workloads import clic_pair, pingpong

    user = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=1, warmup=1)
    out["user"] = user.rtt_ns
    assert out["kernel"] < out["user"]


def test_echo_timeout_on_dead_link():
    cluster = Cluster(granada2003(), loss_rate=1.0)
    ctl = make_controls(cluster)
    results = []

    def body(proc):
        rtt = yield from ctl[0].echo(1, timeout_ns=2_000_000.0)
        results.append(rtt)

    done = cluster.nodes[0].spawn().run(body)
    cluster.env.run(done)
    assert results == [None]
    assert ctl[0].counters.get("echo_timeouts") == 1
    assert ctl[0].stats[1].lost == 1


def test_is_alive_true_and_false():
    alive_cluster = Cluster(granada2003())
    ctl = make_controls(alive_cluster)
    flags = []

    def body(proc):
        ok = yield from ctl[0].is_alive(1)
        flags.append(ok)

    done = alive_cluster.nodes[0].spawn().run(body)
    alive_cluster.env.run(done)
    assert flags == [True]

    dead_cluster = Cluster(granada2003(), loss_rate=1.0)
    ctl2 = make_controls(dead_cluster)
    flags2 = []

    def body2(proc):
        ok = yield from ctl2[0].is_alive(1, probes=2, timeout_ns=500_000.0)
        flags2.append(ok)

    done2 = dead_cluster.nodes[0].spawn().run(body2)
    dead_cluster.env.run(done2)
    assert flags2 == [False]


def test_echo_coexists_with_application_traffic():
    cluster = Cluster(granada2003())
    ctl = make_controls(cluster)
    out = {}

    def app_tx(proc):
        ep = ClicEndpoint(proc, 5)
        yield from ep.send(1, 500_000)

    def app_rx(proc):
        ep = ClicEndpoint(proc, 5)
        msg = yield from ep.recv()
        out["app"] = msg.nbytes

    def pinger(proc):
        rtts = []
        for _ in range(5):
            rtt = yield from ctl[0].echo(1)
            rtts.append(rtt)
        out["pings"] = rtts

    cluster.nodes[0].spawn().run(app_tx)
    d1 = cluster.nodes[1].spawn().run(app_rx)
    d2 = cluster.nodes[0].spawn().run(pinger)
    cluster.env.run(cluster.env.all_of([d1, d2]))
    assert out["app"] == 500_000
    assert all(r is not None for r in out["pings"])
