"""Integration tests for the GAMMA and VIA comparator stacks."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.units import us
from repro.workloads import gamma_pair, pingpong, via_pair


def gamma_cluster(**kw):
    return Cluster(granada2003(**kw), protocols=("gamma",))


def via_cluster(**kw):
    return Cluster(granada2003(**kw), protocols=("via",))


def test_gamma_requires_push_mode():
    from repro.protocols.gamma import GammaLayer

    cluster = Cluster(granada2003())  # stock drivers
    with pytest.raises(RuntimeError):
        GammaLayer(cluster.nodes[0])


def test_mixing_pull_and_push_protocols_rejected():
    with pytest.raises(ValueError):
        Cluster(granada2003(), protocols=("clic", "gamma"))


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        Cluster(granada2003(), protocols=("smurf",))


def test_gamma_message_roundtrip():
    cluster = gamma_cluster()
    result = pingpong(cluster, gamma_pair(), 10_000, repeats=1, warmup=0)
    assert result.rtt_ns > 0


def test_gamma_latency_below_clic():
    """§5: GAMMA's modified-driver path yields lower latency than CLIC."""
    from repro.workloads import clic_pair

    g = pingpong(gamma_cluster(), gamma_pair(), 0, repeats=2, warmup=1)
    c = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=2, warmup=1)
    assert g.one_way_ns < c.one_way_ns


def test_gamma_fragments_large_messages():
    cluster = gamma_cluster(mtu=MTU_STANDARD)
    result = pingpong(cluster, gamma_pair(), 50_000, repeats=1, warmup=0)
    nic = cluster.nodes[0].nics[0]
    assert nic.counters.get("tx_frames") >= -(-50_000 // (1500 - 16))


def test_gamma_no_retransmission_loss_is_fatal():
    """GAMMA has no kernel reliability: a lost frame loses the message."""
    cluster = Cluster(granada2003(), protocols=("gamma",), loss_rate=1.0)
    received = []

    def a(proc):
        yield from proc.node.gamma.send(1, 3, 1_000)

    def b(proc):
        msg = yield from proc.node.gamma.recv(3)
        received.append(msg)

    cluster.nodes[0].spawn().run(a)
    cluster.nodes[1].spawn().run(b)
    cluster.env.run(until=50e6)
    assert received == []


def test_via_roundtrip_and_polling():
    cluster = via_cluster()
    result = pingpong(cluster, via_pair(), 5_000, repeats=1, warmup=0)
    assert result.rtt_ns > 0
    # The receiver polled at least once.
    assert cluster.nodes[0].via.counters.get("poll_probes") > 0


def test_via_send_has_no_syscall():
    """VIA bypasses the kernel: no syscalls on the data path."""
    cluster = via_cluster()
    pingpong(cluster, via_pair(), 1_000, repeats=1, warmup=0)
    assert cluster.nodes[0].kernel.counters.get("syscalls") == 0
    assert cluster.nodes[1].kernel.counters.get("syscalls") == 0


def test_via_no_interrupts_on_receive():
    cluster = via_cluster()
    pingpong(cluster, via_pair(), 1_000, repeats=1, warmup=0)
    for node in cluster.nodes:
        assert node.kernel.irq.counters.get("raised") == 0


def test_via_unmatched_vi_drops():
    cluster = via_cluster()
    sent = []

    def a(proc):
        vi = proc.node.via.create_vi(999)
        yield from vi.send(1, 500)
        sent.append(1)

    cluster.nodes[0].spawn().run(a)
    cluster.env.run(until=10e6)
    assert sent == [1]
    assert cluster.nodes[1].via.counters.get("no_vi_drops") >= 1


def test_via_loss_not_recovered():
    cluster = Cluster(granada2003(), protocols=("via",), loss_rate=1.0)
    vi_a = cluster.nodes[0].via.create_vi(5)
    vi_b = cluster.nodes[1].via.create_vi(5)
    got = []

    def a(proc):
        yield from vi_a.send(1, 500)

    def b(proc):
        msg = vi_b.try_recv()
        got.append(msg)
        return
        yield  # pragma: no cover

    cluster.nodes[0].spawn().run(a)
    cluster.env.run(until=20e6)
    cluster.nodes[1].spawn().run(b)
    cluster.env.run(until=21e6)
    assert got == [None]


def test_via_duplicate_vi_rejected():
    cluster = via_cluster()
    cluster.nodes[0].via.create_vi(7)
    with pytest.raises(ValueError):
        cluster.nodes[0].via.create_vi(7)


def test_comparator_latency_ordering():
    """§3.2/§5: both OS-bypass-ish comparators (VIA's user-level polling,
    GAMMA's light traps + modified driver) beat CLIC's full OS path on
    raw 0-byte latency — the price CLIC pays for portability."""
    from repro.workloads import clic_pair

    v = pingpong(via_cluster(), via_pair(), 0, repeats=2, warmup=1)
    g = pingpong(gamma_cluster(), gamma_pair(), 0, repeats=2, warmup=1)
    c = pingpong(Cluster(granada2003()), clic_pair(), 0, repeats=2, warmup=1)
    assert v.one_way_ns < c.one_way_ns
    assert g.one_way_ns < c.one_way_ns
    # CLIC's penalty over GAMMA stays modest (the paper: 36 vs 32 us).
    assert c.one_way_ns < 4 * g.one_way_ns
