"""Edge coverage for the GAMMA and VIA comparators and socket misuse."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.protocols.tcpip import TcpIpStack


def gamma_cluster(**kw):
    return Cluster(granada2003(**kw), protocols=("gamma",))


def via_cluster(**kw):
    return Cluster(granada2003(**kw), protocols=("via",))


def test_gamma_multiple_ports_demux():
    cluster = gamma_cluster()
    got = {}

    def tx(proc):
        yield from proc.node.gamma.send(1, 10, 1_000)
        yield from proc.node.gamma.send(1, 20, 2_000)

    def rx(proc):
        m20 = yield from proc.node.gamma.recv(20)
        m10 = yield from proc.node.gamma.recv(10)
        got["sizes"] = (m10.nbytes, m20.nbytes)

    cluster.nodes[0].spawn().run(tx)
    done = cluster.nodes[1].spawn().run(rx)
    cluster.env.run(done)
    assert got["sizes"] == (1_000, 2_000)


def test_gamma_ready_message_consumed_without_blocking():
    cluster = gamma_cluster()
    times = {}

    def tx(proc):
        yield from proc.node.gamma.send(1, 5, 100)

    def rx(proc):
        # Arrive late: the message already sits in the port.
        yield proc.env.timeout(5_000_000)
        t0 = proc.env.now
        msg = yield from proc.node.gamma.recv(5)
        times["wait"] = proc.env.now - t0
        return msg.nbytes

    cluster.nodes[0].spawn().run(tx)
    done = cluster.nodes[1].spawn().run(rx)
    assert cluster.env.run(done) == 100
    assert times["wait"] < 2_000  # only the lightweight-trap cost


def test_via_multiple_vis_demux():
    cluster = via_cluster()
    a1 = cluster.nodes[0].via.create_vi(1)
    a2 = cluster.nodes[0].via.create_vi(2)
    b1 = cluster.nodes[1].via.create_vi(1)
    b2 = cluster.nodes[1].via.create_vi(2)
    got = {}

    def tx(proc):
        yield from a1.send(1, 111)
        yield from a2.send(1, 222)

    def rx(proc):
        m2 = yield from b2.recv()
        m1 = yield from b1.recv()
        got["sizes"] = (m1.nbytes, m2.nbytes)

    cluster.nodes[0].spawn().run(tx)
    done = cluster.nodes[1].spawn().run(rx)
    cluster.env.run(done)
    assert got["sizes"] == (111, 222)


def test_via_try_recv_nonblocking():
    cluster = via_cluster()
    vi_a = cluster.nodes[0].via.create_vi(9)
    vi_b = cluster.nodes[1].via.create_vi(9)
    assert vi_b.try_recv() is None

    def tx(proc):
        yield from vi_a.send(1, 512)

    cluster.nodes[0].spawn().run(tx)
    cluster.env.run(until=10e6)
    msg = vi_b.try_recv()
    assert msg is not None and msg.nbytes == 512
    assert vi_b.try_recv() is None


def test_tcp_negative_sizes_rejected():
    cluster = Cluster(granada2003())
    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def bad_send(proc):
        yield from sa.send(-1)

    done = p0.run(bad_send)
    with pytest.raises(ValueError):
        cluster.env.run(done)


def test_udp_two_ports_do_not_cross():
    cluster = Cluster(granada2003())
    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    tx5 = TcpIpStack.udp_socket(p0, port=5)
    tx6 = TcpIpStack.udp_socket(p0, port=6)
    rx5 = TcpIpStack.udp_socket(p1, port=5)
    rx6 = TcpIpStack.udp_socket(p1, port=6)
    got = {}

    def tx(proc):
        yield from tx5.sendto(1, 100)
        yield from tx6.sendto(1, 200)

    def rx(proc):
        m6 = yield from rx6.recvfrom()
        m5 = yield from rx5.recvfrom()
        got["sizes"] = (m5.nbytes, m6.nbytes)

    p0.run(tx)
    done = p1.run(rx)
    cluster.env.run(done)
    assert got["sizes"] == (100, 200)
