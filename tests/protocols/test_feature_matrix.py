"""The §5 feature matrix, as executable claims.

The paper's closing argument is a feature table, not a bandwidth chart:
CLIC is portable (stock drivers), reliable, re-entrant, multiprogrammed,
does same-node delivery, broadcast and channel bonding — features the
faster OS-bypass layers gave up.  Each test pins one row of that table.
"""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.protocols.clic import ClicEndpoint


def test_same_node_delivery_clic_yes_gamma_no():
    """§5: "CLIC allows communication between processes running on the
    same processor.  In other communication layers ... it is not
    possible"."""
    # CLIC: works (covered in depth elsewhere; assert the essential).
    cluster = Cluster(granada2003())
    node = cluster.nodes[0]
    pa, pb = node.spawn(), node.spawn()
    ea, eb = ClicEndpoint(pa, 1), ClicEndpoint(pb, 1)
    got = []

    def tx(proc):
        yield from ea.send(0, 123)

    def rx(proc):
        msg = yield from eb.recv()
        got.append(msg.nbytes)

    pa.run(tx)
    pb.run(rx)
    cluster.env.run(until=5e6)
    assert got == [123]

    # GAMMA: a send to self goes out the NIC, hairpins at the switch,
    # and is dropped — same-node delivery simply does not exist.
    gcluster = Cluster(granada2003(), protocols=("gamma",))
    gnode = gcluster.nodes[0]
    got_g = []

    def gtx(proc):
        yield from gnode.gamma.send(0, 2, 123)

    def grx(proc):
        msg = yield from gnode.gamma.recv(2)
        got_g.append(msg.nbytes)

    gnode.spawn().run(gtx)
    gnode.spawn().run(grx)
    gcluster.env.run(until=5e6)
    assert got_g == []
    assert gcluster.switch.counters.get("hairpin_dropped") == 1


def test_reentrant_module_concurrent_senders_one_node():
    """§5: "The code is re-entrant ... several processes attempt to
    access the OS kernel"."""
    cluster = Cluster(granada2003())
    node0 = cluster.nodes[0]
    received = []

    def tx(tag):
        def body(proc):
            ep = ClicEndpoint(proc, 1)
            yield from ep.send(1, 20_000, tag=tag)

        return body

    def rx(proc):
        ep = ClicEndpoint(proc, 1)
        for _ in range(4):
            msg = yield from ep.recv()
            received.append(msg.tag)

    for tag in range(4):
        node0.spawn().run(tx(tag))
    done = cluster.nodes[1].spawn().run(rx)
    cluster.env.run(done)
    assert sorted(received) == [0, 1, 2, 3]


def test_direct_network_access_for_all_applications():
    """§1: 'direct access to the network for all applications' — many
    processes on both nodes use CLIC simultaneously with protection
    (distinct ports never cross)."""
    cluster = Cluster(granada2003())
    results = {}

    def make_pair(port, nbytes):
        pa = cluster.nodes[0].spawn()
        pb = cluster.nodes[1].spawn()
        ea, eb = ClicEndpoint(pa, port), ClicEndpoint(pb, port)

        def tx(proc):
            yield from ea.send(1, nbytes)

        def rx(proc):
            msg = yield from eb.recv()
            results[port] = msg.nbytes

        pa.run(tx)
        pb.run(rx)

    for i in range(5):
        make_pair(100 + i, 1_000 * (i + 1))
    cluster.env.run(until=50e6)
    assert results == {100: 1000, 101: 2000, 102: 3000, 103: 4000, 104: 5000}


def test_portability_no_driver_modification_flags():
    """The stock driver is shared verbatim between CLIC and TCP — the
    central engineering claim.  (GAMMA/VIA need a different NIC mode.)"""
    cluster = Cluster(granada2003())
    node = cluster.nodes[0]
    # One driver object serves both registered protocols.
    assert node.kernel.protocol_handlers.keys() >= {0x0800, 0x6007}
    assert node.nics[0].rx_deliver == "irq-pull"


def test_sync_and_async_primitives_exist():
    """§5: 'primitives to send messages with confirmation of reception
    ... primitives for synchronous and asynchronous communication'."""
    cluster = Cluster(granada2003())
    proc = cluster.nodes[0].spawn()
    ep = ClicEndpoint(proc, 1)
    for attr in ("send", "send_confirm", "flush", "recv", "recv_nonblocking",
                 "remote_write", "broadcast", "wait_remote_write"):
        assert callable(getattr(ep, attr)), attr
