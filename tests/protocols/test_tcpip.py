"""Integration tests for the TCP/IP baseline stack."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_JUMBO, MTU_STANDARD, granada2003
from repro.protocols.tcpip import TcpIpStack


def make_cluster(**kw):
    return Cluster(granada2003(**kw))


def run_pair(cluster, body_a, body_b):
    p0 = cluster.nodes[0].spawn("a")
    p1 = cluster.nodes[1].spawn("b")
    done_a = p0.run(body_a)
    done_b = p1.run(body_b)
    cluster.env.run(cluster.env.all_of([done_a, done_b]))
    return done_a.value, done_b.value, (p0, p1)


def test_tcp_stream_transfers_bytes():
    cluster = make_cluster()
    socks = {}

    def a(proc):
        yield from socks["a"].send(100_000)
        return "sent"

    def b(proc):
        got = yield from socks["b"].recv(100_000)
        return got

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    socks["a"], socks["b"] = TcpIpStack.connect_pair(p0, p1)
    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert db.value == 100_000


def test_tcp_segments_to_mss():
    cluster = make_cluster(mtu=MTU_STANDARD)
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from sa.send(10_000)

    def b(proc):
        yield from sb.recv(10_000)

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    mss = 1500 - 40
    expected = -(-10_000 // mss)
    assert sa.conn.counters.get("segments_tx") == expected


def test_tcp_bidirectional():
    cluster = make_cluster()
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from sa.send(5_000)
        got = yield from sa.recv(7_000)
        return got

    def b(proc):
        got = yield from sb.recv(5_000)
        yield from sb.send(7_000)
        return got

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert da.value == 7_000
    assert db.value == 5_000


def test_tcp_multiple_connections_demux():
    cluster = make_cluster()
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    s1a, s1b = TcpIpStack.connect_pair(p0, p1)
    s2a, s2b = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from s1a.send(1_000)
        yield from s2a.send(2_000)

    def b(proc):
        two = yield from s2b.recv(2_000)
        one = yield from s1b.recv(1_000)
        return (one, two)

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert db.value == (1_000, 2_000)


def test_tcp_recv_blocks_until_enough_bytes():
    cluster = make_cluster()
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)
    times = {}

    def a(proc):
        yield from sa.send(1_000)
        yield proc.env.timeout(500_000)
        times["second_send"] = proc.env.now
        yield from sa.send(1_000)

    def b(proc):
        yield from sb.recv(2_000)
        times["recv_done"] = proc.env.now

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert times["recv_done"] > times["second_send"]


def test_tcp_reliability_under_loss():
    cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=0.03)
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from sa.send(200_000)

    def b(proc):
        got = yield from sb.recv(200_000)
        return got

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert db.value == 200_000
    assert sa.conn.counters.get("segments_retx") > 0


def test_tcp_duplicate_conn_id_rejected():
    cluster = make_cluster()
    stack = cluster.nodes[0].tcp
    stack.tcp.connect(1, conn_id=77)
    with pytest.raises(ValueError):
        stack.tcp.connect(1, conn_id=77)


def test_tcp_headers_count_on_wire():
    cluster = make_cluster(mtu=MTU_STANDARD)
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from sa.send(1_460)  # exactly one MSS

    def b(proc):
        yield from sb.recv(1_460)

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    # One data frame with 1460 + 20 (TCP) + 20 (IP) payload bytes.
    nic = cluster.nodes[0].nics[0]
    assert nic.counters.get("tx_bytes") >= 1_500


def test_udp_datagram_roundtrip():
    cluster = make_cluster()
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    ua = TcpIpStack.udp_socket(p0, port=53)
    ub = TcpIpStack.udp_socket(p1, port=53)

    def a(proc):
        yield from ua.sendto(1, 4_000)

    def b(proc):
        msg = yield from ub.recvfrom()
        return (msg.nbytes, msg.src_node)

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert db.value == (4_000, 0)


def test_udp_fragments_over_mtu():
    cluster = make_cluster(mtu=MTU_STANDARD)
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    ua = TcpIpStack.udp_socket(p0, port=5)
    ub = TcpIpStack.udp_socket(p1, port=5)

    def a(proc):
        yield from ua.sendto(1, 60_000)

    def b(proc):
        msg = yield from ub.recvfrom()
        return msg.nbytes

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    assert db.value == 60_000
    assert cluster.nodes[0].tcp.ip.counters.get("fragments_tx") > 1


def test_udp_nonblocking_recv():
    cluster = make_cluster()
    p1 = cluster.nodes[1].spawn()
    ub = TcpIpStack.udp_socket(p1, port=9)

    def b(proc):
        msg = yield from ub.recvfrom(block=False)
        return msg

    db = p1.run(b)
    assert cluster.env.run(db) is None


def test_udp_loss_is_not_recovered():
    """UDP gives no reliability — drops stay dropped (paper §3.2(a))."""
    cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=1.0)
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    ua = TcpIpStack.udp_socket(p0, port=5)
    ub = TcpIpStack.udp_socket(p1, port=5)
    got = []

    def a(proc):
        yield from ua.sendto(1, 1_000)

    def b(proc):
        msg = yield from ub.recvfrom()
        got.append(msg)

    p0.run(a)
    p1.run(b)
    cluster.env.run(until=50e6)
    assert got == []
