"""Edge-case and failure-mode tests for CLIC."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.config import MTU_JUMBO, MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint
from repro.protocols.reliability import DeliveryFailed


def run_pair(cluster, body_a, body_b):
    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    done_a, done_b = p0.run(body_a), p1.run(body_b)
    cluster.env.run(cluster.env.all_of([done_a, done_b]))
    return done_a.value, done_b.value


def test_jumbo_interop_mismatch_drops_frames():
    """Paper §2: jumbo frames 'affect the interoperability (both
    communicating computers have to use Jumbo frames)'.  A jumbo sender
    talking to a standard-MTU receiver gets nowhere."""
    cfg = granada2003(mtu=MTU_JUMBO)
    std_node = cfg.node.with_mtu(MTU_STANDARD)
    # Shorten the retry budget so the test is quick.
    fast_fail = replace(
        cfg.node.clic, retransmit_timeout_ns=1_000_000.0, max_retries=2
    )
    cfg = cfg.with_node(replace(cfg.node, clic=fast_fail))
    cluster = Cluster(cfg, node_overrides={1: replace(std_node, clic=fast_fail)})

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        try:
            yield from ep.send_confirm(1, 5000)  # one 5 kB jumbo frame
        except DeliveryFailed:
            return "failed"
        return "delivered"

    p0 = cluster.nodes[0].spawn()
    done = p0.run(a)
    result = cluster.env.run(done)
    assert result == "failed"
    assert cluster.nodes[1].nics[0].counters.get("rx_oversize_drops") > 0


def test_standard_mtu_pair_interoperates_fine():
    cfg = granada2003(mtu=MTU_STANDARD)
    cluster = Cluster(cfg)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 5000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 5000


def test_tx_ring_pressure_triggers_staging():
    """§3.1: when the driver reports the NIC busy, CLIC_MODULE copies the
    data into system memory and sends it later — and nothing is lost."""
    cfg = granada2003(mtu=MTU_STANDARD)
    tiny_ring = replace(cfg.node.nic, tx_ring_slots=2)
    cfg = cfg.with_node(replace(cfg.node, nic=tiny_ring))
    cluster = Cluster(cfg)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 120_000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 120_000
    mod = cluster.nodes[0].clic
    assert mod.counters.get("pkts_staged") > 0
    assert mod.counters.get("staged_copies") > 0
    assert mod.counters.get("pkts_tx_from_backlog") > 0


def test_window_stall_counted_and_recovered():
    cfg = granada2003(mtu=MTU_STANDARD)
    small_window = replace(cfg.node.clic, window_frames=4)
    cfg = cfg.with_node(replace(cfg.node, clic=small_window))
    cluster = Cluster(cfg)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 60_000)  # ~41 fragments through a 4-window
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 60_000
    sender = cluster.nodes[0].clic._senders[1]
    assert sender.counters.get("window_stalls") > 0


def test_fragmentation_offload_reduces_module_packets():
    base = granada2003(mtu=MTU_STANDARD)
    offload = base.with_node(base.node.with_fragmentation_offload(True))

    def measure(cfg):
        cluster = Cluster(cfg)

        def a(proc):
            ep = ClicEndpoint(proc, 1)
            yield from ep.send(1, 120_000)
            yield from ep.flush(1)

        def b(proc):
            ep = ClicEndpoint(proc, 1)
            msg = yield from ep.recv()
            return msg.nbytes

        _, got = run_pair(cluster, a, b)
        assert got == 120_000
        return cluster

    sw = measure(base)
    hw = measure(offload)
    sw_pkts = sw.nodes[0].clic.counters.get("pkts_tx")
    hw_pkts = hw.nodes[0].clic.counters.get("pkts_tx")
    assert hw_pkts < sw_pkts / 10  # 2 super-packets vs ~81 fragments
    assert hw.nodes[0].nics[0].counters.get("tx_offload_fragmented") > 0
    assert hw.nodes[1].nics[0].counters.get("rx_offload_reassembled") > 0


def test_malformed_packet_on_clic_ethertype_survives():
    cluster = Cluster(granada2003())
    n1 = cluster.nodes[1]
    from repro.oskernel import SkBuff

    def inject(env):
        yield from n1.kernel.direct_rx(0x6007, SkBuff(payload_bytes=64, payload="garbage"))

    cluster.env.run(cluster.env.process(inject(cluster.env)))
    assert n1.clic.counters.get("rx_malformed") == 1


def test_remote_write_unclaimed_completions_not_lost():
    cluster = Cluster(granada2003())

    def a(proc):
        ep = ClicEndpoint(proc, 8)
        for i in range(3):
            yield from ep.remote_write(1, 1000, tag=i)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 8)
        ep.register_region(1 << 20)
        # Wait long enough that all three writes complete before the
        # first wait call: none may be lost.
        yield proc.env.timeout(50e6)
        tags = []
        for _ in range(3):
            msg = yield from ep.wait_remote_write()
            tags.append(msg.tag)
        return sorted(tags)

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    p0.run(a)
    done = p1.run(b)
    assert cluster.env.run(done) == [0, 1, 2]


def test_one_copy_mode_never_posts_user_memory_descriptors():
    cluster = Cluster(granada2003(zero_copy=False))

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 50_000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 50_000
    assert cluster.nodes[0].nics[0].counters.get("tx_zero_copy") == 0
    # The sender paid one user->system copy per fragment.
    assert cluster.nodes[0].kernel.counters.get("copies_user_to_system") > 0


def test_zero_copy_mode_posts_user_memory_descriptors():
    cluster = Cluster(granada2003(zero_copy=True))

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 50_000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 50_000
    assert cluster.nodes[0].nics[0].counters.get("tx_zero_copy") > 0
    # No sender-side staging copies (the ring never filled).
    assert cluster.nodes[0].kernel.counters.get("copies_user_to_system") == 0


def test_interleaved_messages_different_ports():
    cluster = Cluster(granada2003())

    def a(proc):
        ep1 = ClicEndpoint(proc, 1)
        ep2 = ClicEndpoint(proc, 2)
        yield from ep1.send(1, 30_000, tag=1)
        yield from ep2.send(1, 40_000, tag=2)

    def b(proc):
        ep1 = ClicEndpoint(proc, 1)
        ep2 = ClicEndpoint(proc, 2)
        m2 = yield from ep2.recv()
        m1 = yield from ep1.recv()
        return (m1.nbytes, m2.nbytes)

    _, got = run_pair(cluster, a, b)
    assert got == (30_000, 40_000)
