"""Property tests: fragmentation round-trips for every wire format.

Seeded-random message sizes × MTUs must fragment (via the shared
:func:`~repro.protocols.headers.fragment_plan`) and reassemble back to
the original payload for each packet family that fragments —
ClicPacket, GammaPacket, ViaPacket — and for TcpSegment's byte-stream
segmentation; ``is_last_fragment`` must hold for exactly one fragment
per message, and it must be the final one.
"""

import pytest

from repro.protocols.headers import (
    ClicPacket,
    ClicPacketType,
    GammaPacket,
    TcpSegment,
    ViaPacket,
    fragment_plan,
)

#: user bytes per frame for the MTUs the paper evaluates, minus
#: representative header overheads (CLIC: 14 eth + 12 clic).
FRAG_MAXES = [1474, 1500 - 26, 9000 - 26, 1, 7, 8973]


def _random_sizes(rng, count=40):
    exact = [0, 1, 1474, 1475, 2948, 8974, 9000]
    drawn = [int(rng.integers(0, 60_000)) for _ in range(count)]
    return exact + drawn


def _make_clic(offset, frag, nbytes):
    return ClicPacket(
        ptype=ClicPacketType.DATA, src_node=0, dst_node=1, port=5,
        msg_id=1, seq=0, frag_offset=offset, frag_bytes=frag, msg_bytes=nbytes,
    )


def _make_gamma(offset, frag, nbytes):
    return GammaPacket(
        src_node=0, dst_node=1, port=5, msg_id=1,
        frag_offset=offset, frag_bytes=frag, msg_bytes=nbytes,
    )


def _make_via(offset, frag, nbytes):
    return ViaPacket(
        src_node=0, dst_node=1, vi_id=3, msg_id=1,
        frag_offset=offset, frag_bytes=frag, msg_bytes=nbytes,
    )


@pytest.mark.parametrize("make", [_make_clic, _make_gamma, _make_via],
                         ids=["clic", "gamma", "via"])
@pytest.mark.parametrize("frag_max", FRAG_MAXES)
def test_property_fragment_reassemble_round_trip(seeded_rng, make, frag_max):
    rng = seeded_rng(frag_max)
    for nbytes in _random_sizes(rng):
        pkts = [make(off, frag, nbytes) for off, frag in fragment_plan(nbytes, frag_max)]

        # Reassembly: fragments are contiguous, in order, and cover the
        # message exactly once.
        assert pkts[0].frag_offset == 0
        for prev, cur in zip(pkts, pkts[1:]):
            assert cur.frag_offset == prev.frag_offset + prev.frag_bytes
        assert sum(p.frag_bytes for p in pkts) == nbytes
        assert all(0 <= p.frag_bytes <= frag_max for p in pkts)
        assert all(p.msg_bytes == nbytes for p in pkts)

        # Exactly one last fragment, and it is the final one — the
        # receiver's completion trigger fires exactly once per message.
        last_flags = [p.is_last_fragment for p in pkts]
        assert sum(last_flags) == 1
        assert last_flags[-1]

        # Fragment count is minimal: ceil(nbytes / frag_max), with one
        # (empty) fragment for the zero-byte message.
        expected = max(1, -(-nbytes // frag_max))
        assert len(pkts) == expected


@pytest.mark.parametrize("frag_max", FRAG_MAXES)
def test_property_tcp_segmentation_round_trip(seeded_rng, frag_max):
    """TCP has no fragment header — the stream is cut into segments whose
    data_bytes must add back up to the original send size."""
    rng = seeded_rng(frag_max)
    for nbytes in _random_sizes(rng):
        segs = [
            TcpSegment(src_node=0, dst_node=1, conn_id=1, seq=i, data_bytes=frag)
            for i, (_, frag) in enumerate(fragment_plan(nbytes, frag_max))
        ]
        assert sum(s.data_bytes for s in segs) == nbytes
        assert [s.seq for s in segs] == list(range(len(segs)))
        assert all(0 <= s.data_bytes <= frag_max for s in segs)


def test_fragment_plan_rejects_bad_inputs():
    with pytest.raises(ValueError):
        list(fragment_plan(-1, 1474))
    with pytest.raises(ValueError):
        list(fragment_plan(100, 0))
    with pytest.raises(ValueError):
        list(fragment_plan(100, -5))


def test_fragment_plan_zero_byte_message_is_one_empty_fragment():
    assert list(fragment_plan(0, 1474)) == [(0, 0)]
