"""Stacks coexisting: CLIC and TCP/IP sharing nodes, bonding + MPI, and
reliability on the Figure 8(b) direct path."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint
from repro.protocols.tcpip import TcpIpStack


def test_clic_and_tcp_share_the_wire():
    """Both stacks run concurrently over one NIC/driver (ethertype
    demux): a real CLIC node still speaks TCP for everything else."""
    cluster = Cluster(granada2003())
    results = {}

    clic_tx = cluster.nodes[0].spawn()
    clic_rx = cluster.nodes[1].spawn()
    ec_tx, ec_rx = ClicEndpoint(clic_tx, 70), ClicEndpoint(clic_rx, 70)

    tcp_a = cluster.nodes[0].spawn()
    tcp_b = cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(tcp_a, tcp_b)

    def c_tx(proc):
        yield from ec_tx.send(1, 500_000)

    def c_rx(proc):
        msg = yield from ec_rx.recv()
        results["clic"] = msg.nbytes

    def t_tx(proc):
        yield from sa.send(500_000)

    def t_rx(proc):
        got = yield from sb.recv(500_000)
        results["tcp"] = got

    done = [clic_tx.run(c_tx), clic_rx.run(c_rx), tcp_a.run(t_tx), tcp_b.run(t_rx)]
    cluster.env.run(cluster.env.all_of(done))
    assert results == {"clic": 500_000, "tcp": 500_000}


def test_mpi_over_bonded_nics():
    from repro.mpi import mpirun

    cfg = granada2003()
    cfg = cfg.with_node(cfg.node.with_nic_count(2))
    cluster = Cluster(cfg)

    def program(ctx):
        peer = 1 - ctx.rank
        msg = yield from ctx.sendrecv(peer, 100_000, peer, 100_000)
        return msg.nbytes

    assert mpirun(cluster, program) == [100_000, 100_000]
    # Both channels carried traffic.
    for node in cluster.nodes:
        assert node.nics[0].counters.get("tx_frames") > 0
        assert node.nics[1].counters.get("tx_frames") > 0


def test_direct_dispatch_reliability_under_loss():
    """The Figure 8(b) path must not compromise reliable delivery."""
    cfg = granada2003(mtu=MTU_STANDARD)
    cfg = cfg.with_node(cfg.node.with_direct_rx(True))
    cluster = Cluster(cfg, loss_rate=0.05)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send_confirm(1, 200_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    d0, d1 = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([d0, d1]))
    assert d1.value == 200_000
    assert cluster.nodes[0].clic.counters.get("pkts_retx") > 0


def test_broadcast_coexists_with_unicast():
    cluster = Cluster(granada2003(num_nodes=3))
    got = {"bcast": [], "unicast": []}

    def tx(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.broadcast(1_000, tag=1)
        yield from ep.send(1, 2_000, tag=2)

    def rx(node_id):
        def body(proc):
            ep = ClicEndpoint(proc, 1)
            msg = yield from ep.recv(tag=1)
            got["bcast"].append((node_id, msg.nbytes))
            if node_id == 1:
                msg = yield from ep.recv(tag=2)
                got["unicast"].append((node_id, msg.nbytes))

        return body

    cluster.nodes[0].spawn().run(tx)
    for i in (1, 2):
        cluster.nodes[i].spawn().run(rx(i))
    cluster.env.run(until=50e6)
    assert sorted(got["bcast"]) == [(1, 1_000), (2, 1_000)]
    assert got["unicast"] == [(1, 2_000)]
