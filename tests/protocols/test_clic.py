"""Integration tests for the CLIC protocol over the simulated cluster."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_JUMBO, MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint
from repro.units import us


def make_cluster(**kw):
    return Cluster(granada2003(**kw))


def run_pair(cluster, body_a, body_b, until=1e9):
    n0, n1 = cluster.nodes[0], cluster.nodes[1]
    p0, p1 = n0.spawn("a"), n1.spawn("b")
    done_a = p0.run(body_a)
    done_b = p1.run(body_b)
    cluster.env.run(cluster.env.all_of([done_a, done_b]))
    return done_a.value, done_b.value


def test_zero_byte_message_delivered():
    cluster = make_cluster()
    ep = {}

    def a(proc):
        ep[0] = ClicEndpoint(proc, 1)
        yield from ep[0].send(1, 0, tag=9)
        return "sent"

    def b(proc):
        ep[1] = ClicEndpoint(proc, 1)
        msg = yield from ep[1].recv()
        return (msg.nbytes, msg.tag, msg.src_node)

    _, got = run_pair(cluster, a, b)
    assert got == (0, 9, 0)


def test_large_message_fragments_and_reassembles():
    cluster = make_cluster(mtu=MTU_STANDARD)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 100_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 100_000
    # 100 kB over (1500-12)-byte fragments
    n0 = cluster.nodes[0]
    expected_frags = -(-100_000 // (1500 - 12))
    assert n0.clic.counters.get("pkts_tx") == expected_frags


def test_message_larger_than_jumbo_works():
    cluster = make_cluster(mtu=MTU_JUMBO)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 50_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 50_000


def test_tag_matching_selects_correct_message():
    cluster = make_cluster()

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 100, tag=1)
        yield from ep.send(1, 200, tag=2)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg2 = yield from ep.recv(tag=2)
        msg1 = yield from ep.recv(tag=1)
        return (msg1.nbytes, msg2.nbytes)

    _, got = run_pair(cluster, a, b)
    assert got == (100, 200)


def test_recv_nonblocking_returns_none_then_message():
    cluster = make_cluster()

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        first = yield from ep.recv_nonblocking()
        yield from ep.send(1, 10, tag=5)
        # Wait for the echo to be sure the peer got it
        msg = yield from ep.recv()
        second = yield from ep.recv_nonblocking()
        return (first, msg.nbytes, second)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        yield from ep.send(0, msg.nbytes)

    got, _ = run_pair(cluster, a, b)
    assert got[0] is None
    assert got[1] == 10
    assert got[2] is None


def test_send_confirm_waits_for_acks():
    cluster = make_cluster()

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send_confirm(1, 5000)
        # All packets must be acked at this point.
        sender = proc.node.clic._senders[1]
        return sender.in_flight

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    in_flight, got = run_pair(cluster, a, b)
    assert in_flight == 0
    assert got == 5000


def test_multiple_senders_to_one_receiver():
    cluster = Cluster(granada2003(num_nodes=3))

    def sender(node_idx):
        def body(proc):
            ep = ClicEndpoint(proc, 1)
            yield from ep.send(2, 1000 * (node_idx + 1), tag=node_idx)
        return body

    def receiver(proc):
        ep = ClicEndpoint(proc, 1)
        sizes = {}
        for _ in range(2):
            msg = yield from ep.recv()
            sizes[msg.src_node] = msg.nbytes
        return sizes

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    p2 = cluster.nodes[2].spawn()
    p0.run(sender(0))
    p1.run(sender(1))
    done = p2.run(receiver)
    sizes = cluster.env.run(done)
    assert sizes == {0: 1000, 1: 2000}


def test_src_filtered_recv():
    cluster = Cluster(granada2003(num_nodes=3))

    def sender(node_idx, size):
        def body(proc):
            ep = ClicEndpoint(proc, 1)
            yield from ep.send(2, size)
        return body

    def receiver(proc):
        ep = ClicEndpoint(proc, 1)
        msg_from_1 = yield from ep.recv(src=1)
        msg_from_0 = yield from ep.recv(src=0)
        return (msg_from_0.nbytes, msg_from_1.nbytes)

    cluster.nodes[0].spawn().run(sender(0, 111))
    cluster.nodes[1].spawn().run(sender(1, 222))
    done = cluster.nodes[2].spawn().run(receiver)
    assert cluster.env.run(done) == (111, 222)


def test_same_node_communication():
    """§5: CLIC delivers between processes on the same node."""
    cluster = make_cluster()
    node = cluster.nodes[0]
    pa, pb = node.spawn("x"), node.spawn("y")
    ea, eb = ClicEndpoint(pa, 7), ClicEndpoint(pb, 7)

    def a(proc):
        yield from ea.send(0, 4000, tag=1)

    def b(proc):
        msg = yield from eb.recv(tag=1)
        return (msg.nbytes, msg.src_node)

    pa.run(a)
    done = pb.run(b)
    got = cluster.env.run(done)
    assert got == (4000, 0)
    # No frames crossed the NIC.
    assert node.nics[0].counters.get("tx_frames") == 0


def test_same_node_latency_lower_than_network():
    cluster = make_cluster()
    node0, node1 = cluster.nodes[0], cluster.nodes[1]
    times = {}

    pa, pb = node0.spawn(), node0.spawn()
    ea, eb = ClicEndpoint(pa, 1), ClicEndpoint(pb, 1)

    def local_rx(proc):
        msg = yield from eb.recv()
        times["local"] = proc.env.now

    def local_tx(proc):
        yield from ea.send(0, 1000)

    pb.run(local_rx)
    pa.run(local_tx)
    cluster.env.run(until=1e7)
    assert times["local"] < us(20)


def test_remote_write_no_receive_call_needed():
    cluster = make_cluster()

    def a(proc):
        ep = ClicEndpoint(proc, 3)
        yield from ep.remote_write(1, 8000)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 3)
        region = ep.register_region(1 << 20)
        msg = yield from ep.wait_remote_write()
        return (msg.nbytes, region.bytes_written, region.completed_messages)

    _, got = run_pair(cluster, a, b)
    assert got == (8000, 8000, 1)


def test_register_region_twice_rejected():
    cluster = make_cluster()
    proc = cluster.nodes[0].spawn()
    ep = ClicEndpoint(proc, 3)
    ep.register_region(100)
    with pytest.raises(ValueError):
        ep.register_region(100)


def test_broadcast_reaches_all_nodes():
    cluster = Cluster(granada2003(num_nodes=4))
    received = {}

    def rx(idx):
        def body(proc):
            ep = ClicEndpoint(proc, 9)
            msg = yield from ep.recv()
            received[idx] = msg.nbytes
        return body

    procs = [cluster.nodes[i].spawn() for i in range(1, 4)]
    for i, p in enumerate(procs, start=1):
        p.run(rx(i))

    def tx(proc):
        ep = ClicEndpoint(proc, 9)
        yield from ep.broadcast(2500)

    cluster.nodes[0].spawn().run(tx)
    cluster.env.run(until=1e7)
    assert received == {1: 2500, 2: 2500, 3: 2500}


def test_kernel_fn_packet_invokes_handler():
    cluster = make_cluster()
    calls = []

    def handler(pkt):
        calls.append(pkt.src_node)
        return
        yield  # pragma: no cover

    cluster.nodes[1].clic.register_kernel_fn(42, handler)

    def a(proc):
        yield from proc.node.kernel.syscall(
            proc.node.clic.send_kernel_fn(1, 42)
        )

    cluster.nodes[0].spawn().run(a)
    cluster.env.run(until=1e7)
    assert calls == [0]


def test_kernel_fn_duplicate_registration_rejected():
    cluster = make_cluster()
    mod = cluster.nodes[0].clic
    mod.register_kernel_fn(1, lambda pkt: iter(()))
    with pytest.raises(ValueError):
        mod.register_kernel_fn(1, lambda pkt: iter(()))


def test_channel_bonding_uses_both_nics():
    """§5: several NICs increase bandwidth through the switch."""
    cfg = granada2003()
    cfg = cfg.with_node(cfg.node.with_nic_count(2))
    cluster = Cluster(cfg)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 200_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b)
    assert got == 200_000
    n0 = cluster.nodes[0]
    assert n0.nics[0].counters.get("tx_frames") > 0
    assert n0.nics[1].counters.get("tx_frames") > 0


def test_bonding_improves_bandwidth_when_io_bus_allows():
    """On 33 MHz PCI the shared I/O bus caps a node below one NIC's wire
    rate, so bonding cannot help (and must not hurt); with server-class
    66 MHz/64-bit PCI the wire is the bottleneck and a second NIC pays."""
    from dataclasses import replace

    from repro.config import pci_66mhz_64bit
    from repro.workloads import clic_pair, stream

    def measure(nics, fast_pci):
        cfg = granada2003()
        node = cfg.node.with_nic_count(nics)
        if fast_pci:
            node = replace(node, pci=pci_66mhz_64bit())
        cluster = Cluster(cfg.with_node(node))
        return stream(cluster, clic_pair(), 2_000_000).bandwidth_mbps

    slow_one, slow_two = measure(1, False), measure(2, False)
    assert slow_two > slow_one * 0.9  # no regression on the shared bus
    fast_one, fast_two = measure(1, True), measure(2, True)
    assert fast_two > fast_one * 1.15
    # Bonding pushes past a single link's wire capacity (then the
    # receiver CPU becomes the next ceiling).
    assert fast_two > 1_000.0 > fast_one


def test_reliability_under_frame_loss():
    """Packets dropped on the wire are retransmitted transparently."""
    cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=0.05)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send_confirm(1, 300_000)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    _, got = run_pair(cluster, a, b, until=60e9)
    assert got == 300_000
    n0 = cluster.nodes[0]
    assert n0.clic.counters.get("pkts_retx") > 0


def test_exactly_once_under_loss_many_messages():
    cluster = Cluster(granada2003(), loss_rate=0.05)

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        for i in range(10):
            yield from ep.send(1, 5_000, tag=i)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        tags = []
        for _ in range(10):
            msg = yield from ep.recv()
            tags.append(msg.tag)
        return tags

    _, tags = run_pair(cluster, a, b)
    assert sorted(tags) == list(range(10))


def test_negative_size_rejected():
    cluster = make_cluster()
    proc = cluster.nodes[0].spawn()
    ep = ClicEndpoint(proc, 1)

    def body(p):
        yield from ep.send(1, -5)

    done = proc.run(body)
    with pytest.raises(ValueError):
        cluster.env.run(done)


def test_byte_conservation_counters():
    cluster = make_cluster()

    def a(proc):
        ep = ClicEndpoint(proc, 1)
        yield from ep.send(1, 123_456)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 1)
        msg = yield from ep.recv()
        return msg.nbytes

    run_pair(cluster, a, b)
    n0, n1 = cluster.nodes
    assert n0.clic.counters.get("bytes_sent") == 123_456
    assert n1.clic.counters.get("bytes_rx") == 123_456
