"""End-to-end randomized traffic: the whole-stack conservation property.

The shared ``seeded_rng`` fixture drives random message matrices (sizes,
tags, node pairs, with and without frame loss) through the full
simulated cluster; every message must arrive exactly once with the
right size and tag, and byte counters must balance.  Each trial is a
deterministic function of the test's seed, which pytest prints on
failure.
"""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.clic import ClicEndpoint

SIZES = [0, 1, 37, 512, 1480, 1500, 4096, 9000, 20_000]


def _random_messages(rng, max_msgs=8, num_nodes=3):
    count = int(rng.integers(1, max_msgs + 1))
    return [
        (int(rng.integers(0, num_nodes)), int(rng.integers(0, num_nodes)),
         int(rng.choice(SIZES)))
        for _ in range(count)
    ]


@pytest.mark.parametrize("trial", range(15))
def test_property_random_traffic_delivered_exactly_once(seeded_rng, trial):
    msgs = _random_messages(seeded_rng(trial))
    cluster = Cluster(granada2003(mtu=MTU_STANDARD, num_nodes=3))
    received = []
    # Unique tags so we can match deliveries to sends.
    plan = [(src, dst, n, tag) for tag, (src, dst, n) in enumerate(msgs)]
    by_receiver = {}
    for src, dst, n, tag in plan:
        by_receiver.setdefault(dst, []).append((src, n, tag))

    endpoints = {}

    def sender_body(node_id, items):
        def body(proc):
            ep = endpoints[("tx", node_id)]
            for dst, n, tag in items:
                yield from ep.send(dst, n, tag=tag)
            for dst in {d for d, _, _ in items}:
                yield from ep.flush(dst)

        return body

    def receiver_body(node_id, expected):
        def body(proc):
            ep = endpoints[("rx", node_id)]
            for _ in expected:
                msg = yield from ep.recv()
                received.append((msg.src_node, node_id, msg.nbytes, msg.tag))

        return body

    by_sender = {}
    for src, dst, n, tag in plan:
        by_sender.setdefault(src, []).append((dst, n, tag))

    for node_id in range(3):
        proc_tx = cluster.nodes[node_id].spawn()
        proc_rx = cluster.nodes[node_id].spawn()
        endpoints[("tx", node_id)] = ClicEndpoint(proc_tx, port=50)
        endpoints[("rx", node_id)] = ClicEndpoint(proc_rx, port=50)

    # NOTE: tx and rx endpoints share port 50 per node, so a sender's own
    # receiver could match... avoid by only receiving what's destined here.
    done = []
    for node_id in range(3):
        tx_items = by_sender.get(node_id, [])
        rx_items = by_receiver.get(node_id, [])
        p_tx = endpoints[("tx", node_id)].proc
        p_rx = endpoints[("rx", node_id)].proc
        done.append(p_tx.run(sender_body(node_id, tx_items)))
        done.append(p_rx.run(receiver_body(node_id, rx_items)))
    cluster.env.run(cluster.env.all_of(done))

    assert sorted(received) == sorted(
        (src, dst, n, tag) for src, dst, n, tag in plan
    )


@pytest.mark.parametrize("trial", range(6))
def test_property_reliable_under_random_loss(seeded_rng, trial):
    rng = seeded_rng(trial)
    sizes = [int(rng.integers(1, 30_001)) for _ in range(int(rng.integers(1, 5)))]
    loss_pct = float(rng.choice([0.02, 0.05, 0.1]))
    cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=loss_pct)
    got = []

    def a(proc):
        ep = ClicEndpoint(proc, 7)
        for i, n in enumerate(sizes):
            yield from ep.send(1, n, tag=i)
        yield from ep.flush(1)

    def b(proc):
        ep = ClicEndpoint(proc, 7)
        for _ in sizes:
            msg = yield from ep.recv()
            got.append((msg.tag, msg.nbytes))

    p0 = cluster.nodes[0].spawn()
    p1 = cluster.nodes[1].spawn()
    d0, d1 = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([d0, d1]))
    assert sorted(got) == sorted(enumerate(sizes))
