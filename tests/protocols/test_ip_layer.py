"""Unit tests for the IP layer's fragmentation/reassembly mechanics."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.tcpip.ip import IpDatagram, IpLayer


def make_ip(mtu=MTU_STANDARD):
    cluster = Cluster(granada2003(mtu=mtu))
    node = cluster.nodes[0]
    return cluster, node.tcp.ip, node


def dgram(nbytes, datagram_id=1, **kw):
    return IpDatagram(
        src_node=0, dst_node=1, protocol="udp", data_bytes=nbytes,
        datagram_id=datagram_id, **kw,
    )


def test_mtu_payload_subtracts_ip_header():
    cluster, ip, node = make_ip()
    assert ip.mtu_payload() == 1500 - 20


def test_tx_small_datagram_single_frame():
    cluster, ip, node = make_ip()

    def body(env):
        yield from ip.tx(dgram(1000))

    cluster.env.run(cluster.env.process(body(cluster.env)))
    assert ip.counters.get("datagrams_tx") == 1
    assert ip.counters.get("fragments_tx") == 0


def test_tx_fragments_exact_multiple():
    cluster, ip, node = make_ip()
    limit = ip.mtu_payload()

    def body(env):
        yield from ip.tx(dgram(3 * limit))

    cluster.env.run(cluster.env.process(body(cluster.env)))
    assert ip.counters.get("fragments_tx") == 3


def test_tx_fragments_with_remainder():
    cluster, ip, node = make_ip()
    limit = ip.mtu_payload()

    def body(env):
        yield from ip.tx(dgram(2 * limit + 1))

    cluster.env.run(cluster.env.process(body(cluster.env)))
    assert ip.counters.get("fragments_tx") == 3


def test_rx_reassembles_in_any_order():
    cluster, ip, node = make_ip()
    total = 3000
    frags = [
        dgram(1000, frag_offset=0, more_fragments=True, total_bytes=total),
        dgram(1000, frag_offset=1000, more_fragments=True, total_bytes=total),
        dgram(1000, frag_offset=2000, more_fragments=False, total_bytes=total),
    ]
    assert ip.rx(frags[2]) is None
    assert ip.rx(frags[0]) is None
    complete = ip.rx(frags[1])
    assert complete is not None
    assert complete.data_bytes == total
    assert ip.counters.get("datagrams_rx") == 1


def test_rx_unfragmented_passthrough():
    cluster, ip, node = make_ip()
    d = dgram(500)
    assert ip.rx(d) is d


def test_rx_interleaved_datagrams_do_not_mix():
    cluster, ip, node = make_ip()
    a1 = dgram(1000, datagram_id=1, frag_offset=0, more_fragments=True, total_bytes=2000)
    b1 = dgram(1000, datagram_id=2, frag_offset=0, more_fragments=True, total_bytes=2000)
    a2 = dgram(1000, datagram_id=1, frag_offset=1000, total_bytes=2000)
    b2 = dgram(1000, datagram_id=2, frag_offset=1000, total_bytes=2000)
    assert ip.rx(a1) is None
    assert ip.rx(b1) is None
    done_a = ip.rx(a2)
    done_b = ip.rx(b2)
    assert done_a.datagram_id == 1 and done_a.data_bytes == 2000
    assert done_b.datagram_id == 2 and done_b.data_bytes == 2000
