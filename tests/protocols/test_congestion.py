"""TCP congestion-control (Reno) tests."""

import pytest

from repro.cluster import Cluster
from repro.config import MTU_STANDARD, granada2003
from repro.protocols.tcpip import TcpIpStack
from repro.protocols.tcpip.tcp import RenoCongestion


def test_slow_start_doubles_per_window():
    cc = RenoCongestion(flow_window=64, initial_cwnd=2)
    assert cc.window() == 2
    cc.on_ack(2)  # a full window of acks -> cwnd doubles
    assert cc.window() == 4
    cc.on_ack(4)
    assert cc.window() == 8


def test_congestion_avoidance_is_linear():
    cc = RenoCongestion(flow_window=64, initial_cwnd=2)
    cc.ssthresh = 4.0
    cc.on_ack(2)  # -> 4, hits ssthresh
    w0 = cc.cwnd
    cc.on_ack(4)  # additive: ~+1 per cwnd-worth of acks
    assert cc.cwnd == pytest.approx(w0 + 1, abs=0.15)


def test_cwnd_capped_at_flow_window():
    cc = RenoCongestion(flow_window=8)
    cc.on_ack(100)
    assert cc.window() == 8


def test_timeout_collapses_to_one():
    cc = RenoCongestion(flow_window=64)
    cc.on_ack(40)
    cc.on_timeout()
    assert cc.window() == 1
    assert cc.ssthresh >= 2


def test_fast_retransmit_halves():
    cc = RenoCongestion(flow_window=64)
    cc.on_ack(40)
    before = cc.cwnd
    cc.on_fast_retransmit()
    assert cc.cwnd == pytest.approx(max(before / 2, 2.0))


def test_window_never_below_one():
    cc = RenoCongestion(flow_window=64, initial_cwnd=1)
    cc.on_timeout()
    cc.on_timeout()
    assert cc.window() == 1


def _transfer(loss_rate, nbytes=150_000):
    cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=loss_rate)
    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    sa, sb = TcpIpStack.connect_pair(p0, p1)

    def a(proc):
        yield from sa.send(nbytes)

    def b(proc):
        got = yield from sb.recv(nbytes)
        return got

    da, db = p0.run(a), p1.run(b)
    cluster.env.run(cluster.env.all_of([da, db]))
    return cluster, sa, db.value


def test_fast_retransmit_fires_under_loss():
    cluster, sock, got = _transfer(loss_rate=0.03)
    assert got == 150_000
    # With dup-ack signalling, recovery should mostly avoid full RTOs.
    assert sock.conn.counters.get("fast_retransmits") >= 1


def test_connection_recovers_and_reopens_window():
    cluster, sock, got = _transfer(loss_rate=0.02)
    assert got == 150_000
    assert sock.conn.congestion.window() >= 2


def test_lossless_transfer_reaches_flow_window():
    cluster, sock, got = _transfer(loss_rate=0.0, nbytes=500_000)
    assert got == 500_000
    cc = sock.conn.congestion
    assert cc.window() == cc.flow_window  # slow start fully opened


def test_loss_hurts_tcp_bandwidth():
    """Congestion control makes loss visibly expensive for TCP."""
    import time

    def measure(loss):
        cluster = Cluster(granada2003(mtu=MTU_STANDARD), loss_rate=loss)
        p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
        sa, sb = TcpIpStack.connect_pair(p0, p1)
        done = {}

        def a(proc):
            yield from sa.send(300_000)

        def b(proc):
            yield from sb.recv(300_000)
            done["t"] = proc.env.now

        da, db = p0.run(a), p1.run(b)
        cluster.env.run(cluster.env.all_of([da, db]))
        return done["t"]

    clean = measure(0.0)
    lossy = measure(0.05)
    assert lossy > clean * 1.3
