"""Randomized stress test: the reliability pair over a hostile channel.

The shared ``seeded_rng`` fixture couples a :class:`WindowedSender` to
an :class:`OrderedReceiver` through a channel that loses, reorders and
duplicates both data packets and acks.  Whatever the channel does, the
receiver must see every sequence number exactly once, in order, and the
sender must finish with an empty window — with a retransmission bill
bounded by the injected adversity (no retransmission storms).  Every
trial derives from the test's seed, which pytest prints on failure.
"""

import pytest

from repro.protocols.reliability import OrderedReceiver, RtoEstimator, WindowedSender
from repro.sim import Environment


class HostileChannel:
    """Delivers callbacks after a random delay; loses, duplicates and
    (via the random delays) reorders traffic.  Deterministic per seed."""

    def __init__(self, env, rng, loss=0.2, dup=0.1, min_ns=50.0, max_ns=400.0):
        self.env = env
        self.rng = rng
        self.loss = loss
        self.dup = dup
        self.min_ns = min_ns
        self.max_ns = max_ns
        self.dropped = 0
        self.duplicated = 0

    def push(self, deliver, item) -> None:
        """Submit one message for (possible) delivery."""
        copies = 0
        if self.rng.random() >= self.loss:
            copies += 1
        else:
            self.dropped += 1
        if copies and self.rng.random() < self.dup:
            copies += 1
            self.duplicated += 1
        for _ in range(copies):
            delay = self.min_ns + self.rng.random() * (self.max_ns - self.min_ns)
            self.env.process(self._deliver(deliver, item, delay))

    def _deliver(self, deliver, item, delay):
        yield self.env.timeout(delay)
        deliver(item)


def _run_stress(rng, total: int = 60, loss: float = 0.2):
    env = Environment()
    channel = HostileChannel(env, rng, loss=loss)
    delivered = []

    sender = WindowedSender(
        env,
        window=8,
        retransmit_timeout_ns=2_000.0,
        max_retries=200,
        retransmit=lambda pkts: [channel.push(on_data, p) for p in pkts],
        rto=RtoEstimator(initial_ns=2_000.0, min_ns=500.0, max_ns=50_000.0),
    )
    sender.dupack_threshold = 3
    receiver = OrderedReceiver(
        env,
        deliver=delivered.append,
        send_ack=lambda cum: channel.push(sender.on_ack, cum),
        ack_every=2,
        ack_delay_ns=300.0,
        stash_limit=16,
    )

    def on_data(item):
        seq, payload = item
        receiver.on_packet(seq, payload)

    def producer(env):
        for i in range(total):
            yield from sender.reserve()
            pkt = [None, i]  # seq filled in below; carried for retransmission
            pkt[0] = sender.register(pkt)
            channel.push(on_data, pkt)
        yield from sender.drain()

    done = env.process(producer(env))
    env.run(done)
    return sender, receiver, channel, delivered


@pytest.mark.parametrize("trial", range(5))
def test_exactly_once_in_order_under_loss_reorder_dup(seeded_rng, trial):
    total = 60
    sender, receiver, channel, delivered = _run_stress(seeded_rng(trial), total=total)
    assert delivered == list(range(total))  # exactly once, in order
    assert sender.in_flight == 0
    assert channel.dropped > 0  # the channel was actually hostile
    assert receiver.counters.get("duplicates") + receiver.counters.get("stashed") > 0


@pytest.mark.parametrize("trial", range(3))
def test_retransmissions_bounded(seeded_rng, trial):
    """Go-back-N may resend a window per loss event, but must not melt
    down: bound total (re)transmissions by a window's worth per drop."""
    total = 60
    sender, receiver, channel, delivered = _run_stress(seeded_rng(trial), total=total)
    resent = sender.counters.get("retransmitted") + sender.counters.get("fast_retransmits")
    budget = (channel.dropped + channel.duplicated + 1) * sender.window
    assert resent <= budget
    assert delivered == list(range(total))


def test_stress_deterministic_per_seed(seeded_rng):
    a = _run_stress(seeded_rng())
    b = _run_stress(seeded_rng())
    assert a[3] == b[3]
    assert a[0].counters.get("retransmitted") == b[0].counters.get("retransmitted")
    assert a[2].dropped == b[2].dropped
