"""Unit + property tests for the sliding-window reliability machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.reliability import DeliveryFailed, OrderedReceiver, WindowedSender
from repro.sim import Environment


def make_sender(env, window=4, timeout=1000, retries=3, sink=None):
    retransmitted = [] if sink is None else sink
    sender = WindowedSender(
        env,
        window=window,
        retransmit_timeout_ns=timeout,
        max_retries=retries,
        retransmit=lambda pkts: retransmitted.extend(pkts),
    )
    return sender, retransmitted


def test_sender_assigns_sequential_seqs():
    env = Environment()
    sender, _ = make_sender(env)
    assert sender.register("a") == 0
    assert sender.register("b") == 1
    assert sender.in_flight == 2


def test_sender_window_blocks_and_ack_releases():
    env = Environment()
    sender, _ = make_sender(env, window=2, timeout=1e9)
    log = []

    def producer(env):
        for i in range(4):
            yield from sender.reserve()
            sender.register(i)
            log.append((i, env.now))

    def acker(env):
        yield env.timeout(100)
        sender.on_ack(2)

    env.process(producer(env))
    env.process(acker(env))
    env.run()
    assert [t for _, t in log] == [0, 0, 100, 100]


def test_register_without_space_is_error():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=1e9)
    sender.register("x")
    with pytest.raises(RuntimeError):
        sender.register("y")


def test_timeout_retransmits_all_in_flight():
    env = Environment()
    sender, retx = make_sender(env, window=8, timeout=500, retries=5)
    sender.register("a")
    sender.register("b")
    env.run(until=600)
    assert retx == ["a", "b"]


def test_ack_cancels_timer():
    env = Environment()
    sender, retx = make_sender(env, window=8, timeout=500)
    sender.register("a")
    sender.on_ack(1)
    env.run(until=2000)
    assert retx == []
    assert sender.in_flight == 0


def test_retry_exhaustion_raises_in_waiters():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=100, retries=2)
    sender.register("doomed")

    def producer(env):
        try:
            yield from sender.reserve()
        except DeliveryFailed:
            return "failed"
        return "ok"

    p = env.process(producer(env))
    assert env.run(p) == "failed"


def test_drain_waits_for_all_acks():
    env = Environment()
    sender, _ = make_sender(env, window=8, timeout=1e9)
    sender.register("a")
    sender.register("b")
    log = []

    def drainer(env):
        yield from sender.drain()
        log.append(env.now)

    def acker(env):
        yield env.timeout(50)
        sender.on_ack(1)
        yield env.timeout(50)
        sender.on_ack(2)

    env.process(drainer(env))
    env.process(acker(env))
    env.run()
    assert log == [100]


def test_duplicate_acks_ignored():
    env = Environment()
    sender, _ = make_sender(env, window=4, timeout=1e9)
    sender.register("a")
    sender.on_ack(1)
    sender.on_ack(1)
    assert sender.counters.get("duplicate_acks") == 1


def test_invalid_window_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        WindowedSender(env, window=0, retransmit_timeout_ns=1, max_retries=1, retransmit=lambda p: None)


def make_receiver(env, ack_every=2, stash=4):
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env,
        deliver=delivered.append,
        send_ack=acks.append,
        ack_every=ack_every,
        ack_delay_ns=1e9,  # effectively off unless tested
        stash_limit=stash,
    )
    return receiver, delivered, acks


def test_receiver_in_order_delivery():
    env = Environment()
    receiver, delivered, acks = make_receiver(env)
    receiver.on_packet(0, "a")
    receiver.on_packet(1, "b")
    assert delivered == ["a", "b"]
    assert acks == [2]  # cumulative after ack_every=2


def test_receiver_stashes_out_of_order():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=10)
    receiver.on_packet(2, "c")
    receiver.on_packet(1, "b")
    assert delivered == []
    receiver.on_packet(0, "a")
    assert delivered == ["a", "b", "c"]
    assert receiver.expected == 3


def test_receiver_duplicate_reacks():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=1)
    receiver.on_packet(0, "a")
    receiver.on_packet(0, "a")  # retransmission
    assert delivered == ["a"]
    assert acks == [1, 1]
    assert receiver.counters.get("duplicates") == 1


def test_receiver_stash_overflow_drops():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, stash=2)
    for seq in (5, 6, 7, 8):
        receiver.on_packet(seq, seq)
    assert receiver.counters.get("stash_overflow_drops") == 2
    assert delivered == []


def test_receiver_delayed_ack_fires():
    env = Environment()
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env, deliver=delivered.append, send_ack=acks.append,
        ack_every=10, ack_delay_ns=500,
    )
    receiver.on_packet(0, "a")
    assert acks == []
    env.run(until=1000)
    assert acks == [1]


def test_receiver_invalid_ack_every():
    env = Environment()
    with pytest.raises(ValueError):
        OrderedReceiver(env, deliver=lambda p: None, send_ack=lambda c: None, ack_every=0)


# -- property-based: any arrival pattern yields exactly-once in-order delivery
@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    shuffles=st.data(),
)
def test_property_exactly_once_in_order_under_reorder_and_dup(n, shuffles):
    """Feed packets 0..n-1 in any order, with duplicates, within the stash
    window: delivery must be exactly-once, in order."""
    env = Environment()
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env, deliver=delivered.append, send_ack=acks.append,
        ack_every=3, ack_delay_ns=1e9, stash_limit=n + 1,
    )
    pending = list(range(n))
    sent = []
    while pending:
        # Pick among the first few undelivered (bounded reorder) or a dup.
        window = pending[: min(4, len(pending))]
        choice = shuffles.draw(st.sampled_from(window + (sent[-2:] if sent else [])))
        if choice in pending:
            pending.remove(choice)
            sent.append(choice)
        receiver.on_packet(choice, choice)
    assert delivered == sorted(delivered)
    assert delivered == list(range(n))


@settings(max_examples=100, deadline=None)
@given(acks=st.lists(st.integers(min_value=0, max_value=50), max_size=20))
def test_property_sender_base_monotonic(acks):
    """Whatever cumulative acks arrive (dups, stale), base never regresses
    and never exceeds next_seq."""
    env = Environment()
    sender, _ = make_sender(env, window=64, timeout=1e12)
    for _ in range(32):
        sender.register("p")
    base_history = [sender.base]
    for a in acks:
        sender.on_ack(min(a, sender.next_seq))
        base_history.append(sender.base)
    assert base_history == sorted(base_history)
    assert sender.base <= sender.next_seq


# -- adaptive RTO (Jacobson/Karels + Karn + backoff) --------------------------
def test_rto_estimator_initial_used_verbatim():
    from repro.protocols.reliability import RtoEstimator

    rto = RtoEstimator(initial_ns=1_000.0, min_ns=5_000.0, max_ns=1e9)
    # Fast-fail configs rely on the configured initial timeout NOT being
    # clamped up to the floor before any sample arrives.
    assert rto.current_ns() == 1_000.0


def test_rto_estimator_first_sample_seeds_srtt():
    from repro.protocols.reliability import RtoEstimator

    rto = RtoEstimator(initial_ns=50e6, min_ns=1_000.0, max_ns=1e12)
    rto.sample(10_000.0)
    assert rto.srtt == 10_000.0
    assert rto.rttvar == 5_000.0
    assert rto.current_ns() == pytest.approx(10_000.0 + 4 * 5_000.0)


def test_rto_estimator_backoff_doubles_and_sample_resets():
    from repro.protocols.reliability import RtoEstimator

    rto = RtoEstimator(initial_ns=1e6, min_ns=1_000.0, max_ns=1e12)
    rto.sample(10_000.0)
    base = rto.current_ns()
    rto.on_timeout()
    rto.on_timeout()
    assert rto.current_ns() == pytest.approx(base * 4)
    rto.sample(10_000.0)  # unambiguous sample ends the backoff episode
    assert rto.backoff == 1.0


def test_rto_estimator_clamped_to_bounds():
    from repro.protocols.reliability import RtoEstimator

    rto = RtoEstimator(initial_ns=1e6, min_ns=5e6, max_ns=10e6)
    rto.sample(10.0)  # tiny RTT -> clamped up to min
    assert rto.current_ns() == 5e6
    for _ in range(10):
        rto.on_timeout()
    assert rto.current_ns() == 10e6  # backoff capped at max
    with pytest.raises(ValueError):
        rto.sample(-1.0)
    with pytest.raises(ValueError):
        RtoEstimator(initial_ns=0, min_ns=1, max_ns=2)
    with pytest.raises(ValueError):
        RtoEstimator(initial_ns=1, min_ns=5, max_ns=2)


def test_sender_timer_uses_adaptive_rto():
    from repro.protocols.reliability import RtoEstimator

    env = Environment()
    retx = []
    rto = RtoEstimator(initial_ns=500.0, min_ns=100.0, max_ns=1e9)
    sender = WindowedSender(
        env, window=4, retransmit_timeout_ns=999_999.0, max_retries=50,
        retransmit=lambda pkts: retx.extend(pkts), rto=rto,
    )
    sender.register("a")
    env.run(until=600)  # initial 500 ns from the estimator, not 999999
    assert retx == ["a"]
    assert rto.backoff == 2.0


def test_karn_rule_no_sample_from_retransmitted():
    from repro.protocols.reliability import RtoEstimator

    env = Environment()
    rto = RtoEstimator(initial_ns=500.0, min_ns=100.0, max_ns=1e9)
    sender = WindowedSender(
        env, window=4, retransmit_timeout_ns=500.0, max_retries=50,
        retransmit=lambda pkts: None, rto=rto,
    )
    sender.register("a")
    env.run(until=600)  # RTO fires: "a" is now retransmitted/ambiguous

    def acker(env):
        yield env.timeout(100)
        sender.on_ack(1)

    env.process(acker(env))
    env.run(until=800)
    assert rto.samples == 0  # Karn: the ambiguous RTT was never sampled
    assert sender.in_flight == 0


def test_acked_through_is_a_gauge_level():
    env = Environment()
    sender, _ = make_sender(env, window=8, timeout=1e9)
    for _ in range(6):
        sender.register("p")
    sender.on_ack(2)
    assert sender.counters.level("acked_through") == 2
    sender.on_ack(5)
    assert sender.counters.level("acked_through") == 5
    # A stale/duplicate ack must not drag the level backwards.
    sender.on_ack(3)
    assert sender.counters.level("acked_through") == 5


# -- fast retransmit: once per window of data (RFC 6582 recovery point) -------
def test_fast_retransmit_fires_once_per_window():
    env = Environment()
    retx = []
    sender, _ = make_sender(env, window=8, timeout=1e9, sink=retx)
    sender.dupack_threshold = 3
    for _ in range(4):
        sender.register("p")
    for _ in range(3):
        sender.on_ack(0)  # three dupacks -> fast retransmit
    assert sender.counters.get("fast_retransmits") == 1
    # More dupacks for the same base are echoes of our own resend (or of
    # duplicated frames on the wire): re-triggering would hand a duplicate
    # storm a positive feedback loop, so recovery waits for the RTO.
    for _ in range(6):
        sender.on_ack(0)
    assert sender.counters.get("fast_retransmits") == 1
    assert len(retx) == 1


def test_fast_retransmit_rearms_after_recovery_completes():
    env = Environment()
    retx = []
    sender, _ = make_sender(env, window=8, timeout=1e9, sink=retx)
    sender.dupack_threshold = 3
    for _ in range(4):
        sender.register("p")
    for _ in range(3):
        sender.on_ack(0)  # recovery point = highest outstanding seq (3)
    assert sender.counters.get("fast_retransmits") == 1
    sender.on_ack(4)  # cumulative ack passes the recovery point
    for _ in range(2):
        sender.register("p")
    for _ in range(3):
        sender.on_ack(4)  # a stall in the NEW window may trigger again
    assert sender.counters.get("fast_retransmits") == 2
    assert len(retx) == 2


def test_fast_retransmit_counts_reset_after_progress():
    env = Environment()
    retx = []
    sender, _ = make_sender(env, window=8, timeout=1e9, sink=retx)
    sender.dupack_threshold = 3
    for _ in range(4):
        sender.register("p")
    sender.on_ack(0)
    sender.on_ack(0)
    sender.on_ack(2)  # progress resets the dupack count
    sender.on_ack(2)
    sender.on_ack(2)
    assert sender.counters.get("fast_retransmits") == 0
    sender.on_ack(2)
    assert sender.counters.get("fast_retransmits") == 1


def test_abort_fails_waiters_and_rejects_future_sends():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=1e9)
    sender.register("stuck")
    outcomes = []

    def producer(env):
        try:
            yield from sender.reserve()
        except DeliveryFailed:
            outcomes.append("failed")

    env.process(producer(env))
    env.run(until=10)
    reasons = []
    sender.fail_listener = reasons.append
    sender.abort("peer declared dead")
    env.run(until=20)
    assert outcomes == ["failed"]
    assert reasons == ["peer declared dead"]
    assert sender.failed
    with pytest.raises(DeliveryFailed):
        sender.register("more")


# -- stale acks vs duplicate acks ---------------------------------------------
def test_stale_ack_counted_separately_from_dupacks():
    env = Environment()
    sender, _ = make_sender(env, window=8, timeout=1e9)
    for _ in range(6):
        sender.register("p")
    sender.on_ack(3)
    sender.on_ack(1)  # late/reordered ack from the past
    assert sender.counters.get("stale_acks") == 1
    assert sender.counters.get("duplicate_acks") == 0


def test_stale_acks_never_trigger_fast_retransmit():
    """Jittered wires deliver old acks late; they carry no evidence about
    the current window and must not fire spurious fast retransmits."""
    env = Environment()
    retx = []
    sender, _ = make_sender(env, window=8, timeout=1e9, sink=retx)
    sender.dupack_threshold = 3
    for _ in range(6):
        sender.register("p")
    sender.on_ack(4)
    for _ in range(5):
        sender.on_ack(2)  # all stale
    assert sender.counters.get("fast_retransmits") == 0
    assert retx == []
    assert sender.counters.get("stale_acks") == 5


def test_window_waiters_wake_in_fifo_order():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=1e9)
    sender.register("head")
    order = []

    def producer(env, n):
        yield from sender.reserve()
        sender.register(n)
        order.append(n)

    for n in range(5):
        env.process(producer(env, n))

    def acker(env):
        for ack in range(1, 7):
            yield env.timeout(10)
            sender.on_ack(ack)

    env.process(acker(env))
    env.run()
    assert order == [0, 1, 2, 3, 4]


# -- out-of-order stash accounting --------------------------------------------
def test_duplicate_of_stashed_packet_counts_as_duplicate():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=10)
    receiver.on_packet(2, "c")
    receiver.on_packet(2, "c")  # wire duplication of a stashed frame
    assert receiver.counters.get("stashed") == 1
    assert receiver.counters.get("duplicates") == 1
    assert delivered == []


def test_max_stash_high_water_mark():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=10, stash=8)
    for seq in (3, 1, 2):
        receiver.on_packet(seq, seq)
    assert receiver.max_stash == 3
    assert receiver.counters.level("max_stash") == 3
    receiver.on_packet(0, 0)  # drains the stash completely
    assert delivered == [0, 1, 2, 3]
    assert receiver.max_stash == 3  # high-water mark survives the drain
