"""Unit + property tests for the sliding-window reliability machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.reliability import DeliveryFailed, OrderedReceiver, WindowedSender
from repro.sim import Environment


def make_sender(env, window=4, timeout=1000, retries=3, sink=None):
    retransmitted = [] if sink is None else sink
    sender = WindowedSender(
        env,
        window=window,
        retransmit_timeout_ns=timeout,
        max_retries=retries,
        retransmit=lambda pkts: retransmitted.extend(pkts),
    )
    return sender, retransmitted


def test_sender_assigns_sequential_seqs():
    env = Environment()
    sender, _ = make_sender(env)
    assert sender.register("a") == 0
    assert sender.register("b") == 1
    assert sender.in_flight == 2


def test_sender_window_blocks_and_ack_releases():
    env = Environment()
    sender, _ = make_sender(env, window=2, timeout=1e9)
    log = []

    def producer(env):
        for i in range(4):
            yield from sender.reserve()
            sender.register(i)
            log.append((i, env.now))

    def acker(env):
        yield env.timeout(100)
        sender.on_ack(2)

    env.process(producer(env))
    env.process(acker(env))
    env.run()
    assert [t for _, t in log] == [0, 0, 100, 100]


def test_register_without_space_is_error():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=1e9)
    sender.register("x")
    with pytest.raises(RuntimeError):
        sender.register("y")


def test_timeout_retransmits_all_in_flight():
    env = Environment()
    sender, retx = make_sender(env, window=8, timeout=500, retries=5)
    sender.register("a")
    sender.register("b")
    env.run(until=600)
    assert retx == ["a", "b"]


def test_ack_cancels_timer():
    env = Environment()
    sender, retx = make_sender(env, window=8, timeout=500)
    sender.register("a")
    sender.on_ack(1)
    env.run(until=2000)
    assert retx == []
    assert sender.in_flight == 0


def test_retry_exhaustion_raises_in_waiters():
    env = Environment()
    sender, _ = make_sender(env, window=1, timeout=100, retries=2)
    sender.register("doomed")

    def producer(env):
        try:
            yield from sender.reserve()
        except DeliveryFailed:
            return "failed"
        return "ok"

    p = env.process(producer(env))
    assert env.run(p) == "failed"


def test_drain_waits_for_all_acks():
    env = Environment()
    sender, _ = make_sender(env, window=8, timeout=1e9)
    sender.register("a")
    sender.register("b")
    log = []

    def drainer(env):
        yield from sender.drain()
        log.append(env.now)

    def acker(env):
        yield env.timeout(50)
        sender.on_ack(1)
        yield env.timeout(50)
        sender.on_ack(2)

    env.process(drainer(env))
    env.process(acker(env))
    env.run()
    assert log == [100]


def test_duplicate_acks_ignored():
    env = Environment()
    sender, _ = make_sender(env, window=4, timeout=1e9)
    sender.register("a")
    sender.on_ack(1)
    sender.on_ack(1)
    assert sender.counters.get("duplicate_acks") == 1


def test_invalid_window_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        WindowedSender(env, window=0, retransmit_timeout_ns=1, max_retries=1, retransmit=lambda p: None)


def make_receiver(env, ack_every=2, stash=4):
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env,
        deliver=delivered.append,
        send_ack=acks.append,
        ack_every=ack_every,
        ack_delay_ns=1e9,  # effectively off unless tested
        stash_limit=stash,
    )
    return receiver, delivered, acks


def test_receiver_in_order_delivery():
    env = Environment()
    receiver, delivered, acks = make_receiver(env)
    receiver.on_packet(0, "a")
    receiver.on_packet(1, "b")
    assert delivered == ["a", "b"]
    assert acks == [2]  # cumulative after ack_every=2


def test_receiver_stashes_out_of_order():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=10)
    receiver.on_packet(2, "c")
    receiver.on_packet(1, "b")
    assert delivered == []
    receiver.on_packet(0, "a")
    assert delivered == ["a", "b", "c"]
    assert receiver.expected == 3


def test_receiver_duplicate_reacks():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, ack_every=1)
    receiver.on_packet(0, "a")
    receiver.on_packet(0, "a")  # retransmission
    assert delivered == ["a"]
    assert acks == [1, 1]
    assert receiver.counters.get("duplicates") == 1


def test_receiver_stash_overflow_drops():
    env = Environment()
    receiver, delivered, acks = make_receiver(env, stash=2)
    for seq in (5, 6, 7, 8):
        receiver.on_packet(seq, seq)
    assert receiver.counters.get("stash_overflow_drops") == 2
    assert delivered == []


def test_receiver_delayed_ack_fires():
    env = Environment()
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env, deliver=delivered.append, send_ack=acks.append,
        ack_every=10, ack_delay_ns=500,
    )
    receiver.on_packet(0, "a")
    assert acks == []
    env.run(until=1000)
    assert acks == [1]


def test_receiver_invalid_ack_every():
    env = Environment()
    with pytest.raises(ValueError):
        OrderedReceiver(env, deliver=lambda p: None, send_ack=lambda c: None, ack_every=0)


# -- property-based: any arrival pattern yields exactly-once in-order delivery
@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    shuffles=st.data(),
)
def test_property_exactly_once_in_order_under_reorder_and_dup(n, shuffles):
    """Feed packets 0..n-1 in any order, with duplicates, within the stash
    window: delivery must be exactly-once, in order."""
    env = Environment()
    delivered, acks = [], []
    receiver = OrderedReceiver(
        env, deliver=delivered.append, send_ack=acks.append,
        ack_every=3, ack_delay_ns=1e9, stash_limit=n + 1,
    )
    pending = list(range(n))
    sent = []
    while pending:
        # Pick among the first few undelivered (bounded reorder) or a dup.
        window = pending[: min(4, len(pending))]
        choice = shuffles.draw(st.sampled_from(window + (sent[-2:] if sent else [])))
        if choice in pending:
            pending.remove(choice)
            sent.append(choice)
        receiver.on_packet(choice, choice)
    assert delivered == sorted(delivered)
    assert delivered == list(range(n))


@settings(max_examples=100, deadline=None)
@given(acks=st.lists(st.integers(min_value=0, max_value=50), max_size=20))
def test_property_sender_base_monotonic(acks):
    """Whatever cumulative acks arrive (dups, stale), base never regresses
    and never exceeds next_seq."""
    env = Environment()
    sender, _ = make_sender(env, window=64, timeout=1e12)
    for _ in range(32):
        sender.register("p")
    base_history = [sender.base]
    for a in acks:
        sender.on_ack(min(a, sender.next_seq))
        base_history.append(sender.base)
    assert base_history == sorted(base_history)
    assert sender.base <= sender.next_seq
