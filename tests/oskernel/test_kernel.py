"""Unit tests for kernel mechanics: syscalls, blocking, IRQs, bottom halves."""

import pytest

from repro.config import CpuParams, KernelParams, MemoryParams
from repro.hw import Cpu, MemoryBus, PRIO_KERNEL
from repro.oskernel import Kernel, SkBuff
from repro.sim import Environment


def make_kernel(env, params=None):
    cpu = Cpu(env, CpuParams(context_switch_ns=100, scheduler_pass_ns=50))
    mem = MemoryBus(env, MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=0))
    return Kernel(env, params or KernelParams(), cpu, mem)


def test_syscall_charges_enter_body_exit_scheduler():
    env = Environment()
    params = KernelParams(syscall_enter_ns=350, syscall_exit_ns=300)
    k = make_kernel(env, params)

    def body():
        yield from k.cpu.execute(1000, PRIO_KERNEL)
        return "r"

    def proc(env):
        result = yield from k.syscall(body())
        return (result, env.now)

    result, t = env.run(env.process(proc(env)))
    assert result == "r"
    # enter 350 + body 1000 + exit 300 + scheduler 50
    assert t == pytest.approx(1700)
    assert k.counters.get("syscalls") == 1


def test_syscall_without_scheduler_on_return():
    env = Environment()
    params = KernelParams(scheduler_on_syscall_return=False)
    k = make_kernel(env, params)

    def body():
        return "x"
        yield  # pragma: no cover

    def proc(env):
        yield from k.syscall(body())
        return env.now

    t = env.run(env.process(proc(env)))
    assert t == pytest.approx(params.syscall_enter_ns + params.syscall_exit_ns)


def test_lightweight_call_cheaper_than_syscall():
    env = Environment()
    k = make_kernel(env)

    def body():
        return None
        yield  # pragma: no cover

    def lw(env):
        yield from k.lightweight_call(body())
        return env.now

    t_light = env.run(env.process(lw(env)))
    assert t_light < k.params.syscall_enter_ns + k.params.syscall_exit_ns


def test_block_on_charges_wakeup_path():
    env = Environment()
    k = make_kernel(env)
    ev = env.event()

    def sleeper(env):
        value = yield from k.block_on(ev)
        return (value, env.now)

    def waker(env):
        yield env.timeout(1_000)
        ev.succeed("data")

    p = env.process(sleeper(env))
    env.process(waker(env))
    value, t = env.run(p)
    assert value == "data"
    # ctxsw out (100) overlaps the wait; wake at 1000 + sched 50 + ctxsw 100
    assert t == pytest.approx(1_150)
    assert k.counters.get("blocks") == 1


def test_copy_helpers_charge_memory_time():
    env = Environment()
    k = make_kernel(env)

    def proc(env):
        yield from k.copy_user_to_system(1000)
        yield from k.copy_system_to_user(500)
        yield from k.copy_user_to_user(250)
        return env.now

    t = env.run(env.process(proc(env)))
    assert t == pytest.approx(1750)  # 1 GB/s, zero setup
    assert k.counters.get("copy_bytes") == 1750


def test_protocol_registry_rejects_duplicates():
    env = Environment()
    k = make_kernel(env)
    handler = lambda skb: iter(())  # noqa: E731
    k.register_protocol(0x6007, handler)
    with pytest.raises(ValueError):
        k.register_protocol(0x6007, handler)


def test_deliver_rx_runs_handler_via_bottom_half():
    env = Environment()
    k = make_kernel(env)
    seen = []

    def handler(skb):
        seen.append((skb.payload_bytes, env.now))
        yield from k.cpu.execute(10, PRIO_KERNEL)

    k.register_protocol(0x6007, handler)
    k.deliver_rx(0x6007, SkBuff(payload_bytes=42), in_irq_context=True)
    env.run()
    assert len(seen) == 1
    assert seen[0][0] == 42
    # BH dispatch cost was charged before the handler ran.
    assert seen[0][1] >= k.params.bottom_half_dispatch_ns
    assert k.bottom_halves.counters.get("executed") == 1


def test_deliver_rx_unknown_ethertype_counted():
    env = Environment()
    k = make_kernel(env)
    k.deliver_rx(0x9999, SkBuff(payload_bytes=1), in_irq_context=False)
    env.run()
    assert k.counters.get("rx_unknown_ethertype") == 1


def test_direct_rx_runs_inline():
    env = Environment()
    k = make_kernel(env)
    seen = []

    def handler(skb):
        seen.append(env.now)
        yield from k.cpu.execute(10, PRIO_KERNEL)

    k.register_protocol(0x6007, handler)

    def proc(env):
        yield from k.direct_rx(0x6007, SkBuff(payload_bytes=1))
        return env.now

    t = env.run(env.process(proc(env)))
    assert seen == [0]
    assert t == 10
    assert k.bottom_halves.counters.get("scheduled") == 0


def test_irq_controller_charges_entry_and_exit():
    env = Environment()
    k = make_kernel(env)
    ran = []

    def handler():
        ran.append(env.now)
        yield from k.cpu.execute(100, 0)

    k.irq.raise_irq(handler)
    env.run()
    assert ran == [k.params.irq_entry_ns]
    assert env.now == pytest.approx(k.params.irq_entry_ns + 100 + k.params.irq_exit_ns)


def test_irq_preempts_user_work():
    env = Environment()
    k = make_kernel(env)
    from repro.hw import PRIO_USER

    finished = {}

    def user(env):
        yield from k.cpu.execute(10_000, PRIO_USER)
        finished["user"] = env.now

    def handler():
        yield from k.cpu.execute(500, 0)
        finished["irq"] = env.now

    def trigger(env):
        yield env.timeout(2_000)
        k.irq.raise_irq(handler)

    env.process(user(env))
    env.process(trigger(env))
    env.run()
    assert finished["irq"] < finished["user"]
    # user work stretched by the irq service time
    irq_cost = k.params.irq_entry_ns + 500 + k.params.irq_exit_ns
    assert finished["user"] == pytest.approx(10_000 + irq_cost)
