"""Unit tests for the vendor NIC driver."""

import pytest

from repro.config import DriverParams, LinkParams, NicParams, PciParams
from repro.cluster import Cluster
from repro.config import granada2003
from repro.hw.nic import EtherType, Frame, MacAddress
from repro.oskernel import SkBuff


def make_node(**kw):
    cluster = Cluster(granada2003(**kw))
    return cluster, cluster.nodes[0], cluster.nodes[1]


def test_transmit_charges_tx_call_and_posts():
    cluster, n0, _ = make_node()
    driver = n0.drivers[0]

    def body(env):
        skb = SkBuff.for_user_payload(1000)
        skb.push_header("clic", 12)
        ok = yield from driver.transmit(skb, MacAddress(17), EtherType.CLIC)
        return (ok, env.now)

    ok, t = cluster.env.run(cluster.env.process(body(cluster.env)))
    assert ok
    assert t >= n0.cfg.driver.tx_call_ns
    assert driver.counters.get("tx_accepted") == 1


def test_transmit_reports_ring_full():
    from dataclasses import replace

    cfg = granada2003()
    # A tiny ring and big frames: the pump cannot keep up with posts.
    cfg = cfg.with_node(replace(cfg.node, nic=replace(cfg.node.nic, tx_ring_slots=2)))
    cluster = Cluster(cfg)
    n0 = cluster.nodes[0]
    driver = n0.drivers[0]

    def body(env):
        results = []
        for _ in range(6):
            skb = SkBuff.for_user_payload(8900)
            ok = yield from driver.transmit(skb, MacAddress(17), EtherType.CLIC)
            results.append(ok)
        return results

    results = cluster.env.run(cluster.env.process(body(cluster.env)))
    assert not all(results)
    assert driver.counters.get("tx_ring_busy") >= 1


def test_irq_handler_respects_budget():
    cluster, n0, n1 = make_node()
    nic = n1.nics[0]
    budget = n1.cfg.driver.rx_budget_per_irq
    # Park more frames than the budget on the NIC without kernel help.
    for i in range(budget + 4):
        nic._rx_buffer.append(
            type(nic._rx_buffer)() if False else _rx(nic, 100)
        )
    # Trigger the handler directly.
    n1.drivers[0]._on_irq()
    cluster.env.run(until=cluster.env.now + 5e6)
    # The budget forced a second interrupt for the leftover frames
    # (re-armed through the coalescer's hold-off timer).
    assert n1.drivers[0].counters.get("rx_irqs") == 2
    assert n1.drivers[0].counters.get("rx_frames") == budget + 4
    assert nic.rx_pending() == 0


def _rx(nic, nbytes):
    from repro.hw.nic.base import RxFrame

    return RxFrame(
        frame=Frame(src=MacAddress(99), dst=nic.mac, ethertype=0x9999, payload_bytes=nbytes),
        arrived_at=0.0,
    )


def test_unknown_ethertype_counted_not_crashed():
    cluster, n0, n1 = make_node()
    nic = n1.nics[0]
    nic._rx_buffer.append(_rx(nic, 50))
    n1.drivers[0]._on_irq()
    cluster.env.run(until=cluster.env.now + 5e6)
    assert n1.kernel.counters.get("rx_unknown_ethertype") == 1


def test_direct_mode_skips_bottom_halves():
    cfg = granada2003()
    cfg = cfg.with_node(cfg.node.with_direct_rx(True))
    cluster = Cluster(cfg)
    from repro.protocols.clic import ClicEndpoint

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    ep0, ep1 = ClicEndpoint(p0, 1), ClicEndpoint(p1, 1)

    def a(proc):
        yield from ep0.send(1, 2000)

    def b(proc):
        msg = yield from ep1.recv()
        return msg.nbytes

    p0.run(a)
    done = p1.run(b)
    assert cluster.env.run(done) == 2000
    # Data packets never took the bottom-half path on the receiver...
    # (acks on the sender side still might; check the receiver's kernel).
    assert cluster.nodes[1].kernel.bottom_halves.counters.get("scheduled") == 0


def test_direct_mode_waiting_receiver_skips_copy():
    cfg = granada2003()
    cfg = cfg.with_node(cfg.node.with_direct_rx(True))
    cluster = Cluster(cfg)
    from repro.protocols.clic import ClicEndpoint

    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    ep0, ep1 = ClicEndpoint(p0, 1), ClicEndpoint(p1, 1)

    def b(proc):
        msg = yield from ep1.recv()  # blocks before data arrives
        return msg.nbytes

    def a(proc):
        yield proc.env.timeout(100_000)  # let the receiver block first
        yield from ep0.send(1, 2000)

    done = p1.run(b)
    p0.run(a)
    assert cluster.env.run(done) == 2000
    mod = cluster.nodes[1].clic
    assert mod.counters.get("direct_user_deliveries") >= 1
    assert cluster.nodes[1].kernel.counters.get("copies_system_to_user") == 0
