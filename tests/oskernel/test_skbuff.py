"""Unit tests for SkBuff and BufferPool."""

import pytest

from repro.oskernel import BufferPool, SkBuff, SYSTEM_MEMORY, USER_MEMORY
from repro.sim import Environment


def test_skbuff_defaults_to_system_fragment():
    skb = SkBuff(payload_bytes=100)
    assert skb.fragments == [(SYSTEM_MEMORY, 100)]
    assert not skb.is_zero_copy


def test_skbuff_user_payload_is_zero_copy():
    skb = SkBuff.for_user_payload(500)
    assert skb.is_zero_copy
    assert skb.bytes_in(USER_MEMORY) == 500


def test_skbuff_zero_length_not_zero_copy():
    skb = SkBuff.for_user_payload(0)
    assert not skb.is_zero_copy
    assert skb.fragments == []


def test_skbuff_header_stack_accumulates():
    skb = SkBuff.for_user_payload(1000)
    skb.push_header("clic", 12)
    skb.push_header("eth", 14)
    assert skb.header_bytes() == 26
    assert skb.total_bytes() == 1026


def test_skbuff_fragment_mismatch_rejected():
    with pytest.raises(ValueError):
        SkBuff(payload_bytes=100, fragments=[(USER_MEMORY, 50)])


def test_skbuff_negative_sizes_rejected():
    with pytest.raises(ValueError):
        SkBuff(payload_bytes=-1)
    skb = SkBuff(payload_bytes=0)
    with pytest.raises(ValueError):
        skb.push_header("x", -5)


def test_skbuff_relocate_moves_all_bytes():
    skb = SkBuff.for_user_payload(300)
    skb.relocate(SYSTEM_MEMORY)
    assert skb.bytes_in(SYSTEM_MEMORY) == 300
    assert not skb.is_zero_copy


def test_pool_try_take_and_give():
    env = Environment()
    pool = BufferPool(env, 1000)
    assert pool.try_take(600)
    assert not pool.try_take(500)
    pool.give(600)
    assert pool.try_take(500)
    assert pool.counters.get("alloc_denied") == 1


def test_pool_oversized_request_rejected():
    env = Environment()
    pool = BufferPool(env, 100)
    with pytest.raises(ValueError):
        pool.try_take(200)


def test_pool_blocking_take_waits_for_free():
    env = Environment()
    pool = BufferPool(env, 100)
    log = []

    def hog(env):
        yield from pool.take(100)
        yield env.timeout(50)
        pool.give(100)

    def waiter(env):
        yield env.timeout(1)
        yield from pool.take(80)
        log.append(env.now)

    env.process(hog(env))
    env.process(waiter(env))
    env.run()
    assert log == [50]
    assert pool.in_use == 80


def test_pool_waiters_fifo_no_starvation():
    env = Environment()
    pool = BufferPool(env, 100)
    order = []

    def hog(env):
        yield from pool.take(100)
        yield env.timeout(10)
        pool.give(100)

    def want(env, name, nbytes, delay):
        yield env.timeout(delay)
        yield from pool.take(nbytes)
        order.append(name)
        yield env.timeout(5)
        pool.give(nbytes)

    env.process(hog(env))
    env.process(want(env, "big", 90, 1))
    env.process(want(env, "small", 10, 2))
    env.run()
    # FIFO: big goes first even though small would fit sooner.
    assert order == ["big", "small"]


def test_pool_double_free_detected():
    env = Environment()
    pool = BufferPool(env, 100)
    pool.try_take(50)
    pool.give(50)
    with pytest.raises(RuntimeError):
        pool.give(1)


def test_pool_utilization():
    env = Environment()
    pool = BufferPool(env, 200)
    pool.try_take(50)
    assert pool.utilization() == pytest.approx(0.25)
