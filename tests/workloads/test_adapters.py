"""Tests for the transport adapters' uniform interface."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.workloads import (
    clic_pair,
    gamma_pair,
    pingpong,
    tcp_pair,
    via_pair,
)


def test_clic_adapter_size_mismatch_detected():
    cluster = Cluster(granada2003())
    setup = clic_pair()
    p0, p1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    ep_a, ep_b = setup(p0, p1)

    def a(proc):
        yield from ep_a.send(100)

    def b(proc):
        yield from ep_b.recv(999)  # wrong expectation

    p0.run(a)
    done = p1.run(b)
    with pytest.raises(AssertionError):
        cluster.env.run(done)


def test_clic_pair_fresh_ports_do_not_collide():
    """Two setups on the same cluster must not cross-deliver."""
    cluster = Cluster(granada2003())
    setup1, setup2 = clic_pair(), clic_pair()
    pa1, pb1 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    pa2, pb2 = cluster.nodes[0].spawn(), cluster.nodes[1].spawn()
    a1, b1 = setup1(pa1, pb1)
    a2, b2 = setup2(pa2, pb2)
    got = []

    def send1(proc):
        yield from a1.send(111)

    def recv1(proc):
        msg = yield from b1.recv(111)
        got.append(("one", msg.nbytes))

    def send2(proc):
        yield from a2.send(222)

    def recv2(proc):
        msg = yield from b2.recv(222)
        got.append(("two", msg.nbytes))

    pa1.run(send1)
    pb1.run(recv1)
    pa2.run(send2)
    pb2.run(recv2)
    cluster.env.run(until=10e6)
    assert sorted(got) == [("one", 111), ("two", 222)]


def test_tcp_adapter_zero_byte_rides_one_byte_probe():
    cluster = Cluster(granada2003())
    result = pingpong(cluster, tcp_pair(), 0, repeats=1, warmup=0)
    assert result.rtt_ns > 0


@pytest.mark.parametrize(
    "protocols,pair_factory",
    [(("clic", "tcp"), clic_pair), (("clic", "tcp"), tcp_pair),
     (("gamma",), gamma_pair), (("via",), via_pair)],
)
def test_all_adapters_roundtrip_uniformly(protocols, pair_factory):
    cluster = Cluster(granada2003(), protocols=protocols)
    result = pingpong(cluster, pair_factory(), 5_000, repeats=1, warmup=1)
    assert result.nbytes == 5_000
    assert result.bandwidth_mbps > 0
