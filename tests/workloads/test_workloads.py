"""Tests for the measurement workloads and sweep utilities."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.workloads import (
    SweepSeries,
    bandwidth_sweep,
    clic_pair,
    netpipe_sizes,
    pingpong,
    stream,
)


def test_netpipe_sizes_log_grid():
    sizes = netpipe_sizes(1, 3, points_per_decade=1)
    assert sizes == [10, 100, 1000]
    sizes = netpipe_sizes(1, 2, points_per_decade=3)
    assert sizes[0] == 10 and sizes[-1] == 100
    assert sizes == sorted(set(sizes))


def test_netpipe_sizes_validation():
    with pytest.raises(ValueError):
        netpipe_sizes(3, 1)
    with pytest.raises(ValueError):
        netpipe_sizes(1, 2, points_per_decade=0)


def test_pingpong_rtt_increases_with_size():
    small = pingpong(Cluster(granada2003()), clic_pair(), 100, repeats=1, warmup=1)
    large = pingpong(Cluster(granada2003()), clic_pair(), 100_000, repeats=1, warmup=1)
    assert large.rtt_ns > small.rtt_ns
    assert large.bandwidth_mbps > small.bandwidth_mbps


def test_pingpong_result_fields():
    r = pingpong(Cluster(granada2003()), clic_pair(), 1_000, repeats=2, warmup=0)
    d = r.as_dict()
    assert d["nbytes"] == 1_000
    assert d["one_way_us"] == pytest.approx(d["rtt_us"] / 2)
    assert r.one_way_ns == r.rtt_ns / 2


def test_stream_bandwidth_exceeds_pingpong():
    """Pipelining pays: stream bandwidth > ping-pong at equal size."""
    n = 16_384
    pp = pingpong(Cluster(granada2003()), clic_pair(), n, repeats=1, warmup=1)
    st = stream(Cluster(granada2003()), clic_pair(), n, messages=16)
    assert st.bandwidth_mbps > pp.bandwidth_mbps


def test_sweep_series_helpers():
    series = bandwidth_sweep(
        "clic",
        lambda: Cluster(granada2003()),
        clic_pair,
        sizes=[100, 10_000, 1_000_000],
        repeats=1,
        warmup=0,
    )
    assert series.label == "clic"
    assert series.sizes == [100, 10_000, 1_000_000]
    assert series.asymptote() == series.mbps[-1]
    assert series.at(10_000).nbytes == 10_000
    with pytest.raises(KeyError):
        series.at(555)
    half = series.half_bandwidth_size()
    assert half in series.sizes
    # Monotone rising curve for these sizes.
    assert series.mbps == sorted(series.mbps)


def test_sweep_series_is_a_sequence():
    from repro.workloads.pingpong import PingPongResult

    series = SweepSeries("s")
    assert len(series) == 0 and list(series) == []
    a = PingPongResult(nbytes=100, repeats=1, rtt_ns=10_000)
    b = PingPongResult(nbytes=200, repeats=1, rtt_ns=12_000)
    series.add(a)
    series.add(b)
    assert len(series) == 2
    assert list(series) == [a, b]
    assert series.at(200) is b
    # Direct appends to ``points`` (legacy callers) are indexed lazily.
    c = PingPongResult(nbytes=300, repeats=1, rtt_ns=14_000)
    series.points.append(c)
    assert series.at(300) is c
    assert len(series) == 3


def test_bandwidth_sweep_parallel_matches_serial():
    """A config-based sweep is pure data, so a pooled run must return
    the exact series a serial run does."""
    sizes = [100, 10_000]
    serial = bandwidth_sweep("clic", granada2003(), clic_pair, sizes,
                             repeats=1, warmup=0)
    pooled = bandwidth_sweep("clic", granada2003(), clic_pair, sizes,
                             repeats=1, warmup=0, jobs=2)
    assert [p.rtt_ns for p in serial] == [p.rtt_ns for p in pooled]
    assert serial.mbps == pooled.mbps
