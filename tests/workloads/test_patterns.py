"""Tests for the multi-node communication patterns."""

import pytest

from repro.cluster import Cluster
from repro.config import granada2003
from repro.workloads.patterns import all_pairs, hotspot, overlap_efficiency


def test_hotspot_aggregates_all_senders():
    cluster = Cluster(granada2003(num_nodes=4))
    result = hotspot(cluster, nbytes_each=100_000)
    assert result.senders == 3
    assert set(result.per_sender_done_ns) == {1, 2, 3}
    assert result.elapsed_ns > 0
    assert result.aggregate_mbps > 0


def test_hotspot_sink_is_the_bottleneck():
    """3 senders into one sink: aggregate cannot exceed one receiver's
    capacity (~600 Mb/s) — the hotspot is receiver-bound."""
    cluster = Cluster(granada2003(num_nodes=4))
    result = hotspot(cluster, nbytes_each=500_000)
    assert result.aggregate_mbps < 700


def test_hotspot_needs_multiple_nodes():
    cluster = Cluster(granada2003(num_nodes=1))
    with pytest.raises(ValueError):
        hotspot(cluster, 1000)


def test_all_pairs_completes():
    cluster = Cluster(granada2003(num_nodes=4))
    finish = all_pairs(cluster, nbytes=50_000)
    assert finish > 0
    # Every node sent to every other: 12 messages total.
    total_msgs = sum(n.clic.counters.get("msgs_sent") for n in cluster.nodes)
    assert total_msgs == 12


def test_overlap_full_hiding_with_long_compute():
    cluster = Cluster(granada2003())
    eff = overlap_efficiency(cluster, nbytes=100_000, compute_ns=50e6)
    # 50 ms of compute dwarfs a 100 kB transfer; only the final-ack tail
    # (tens of us) peeks out past the compute window.
    assert eff > 0.99


def test_overlap_partial_with_short_compute():
    cluster = Cluster(granada2003())
    eff = overlap_efficiency(cluster, nbytes=2_000_000, compute_ns=1e6)
    assert 0 < eff < 1.0
