"""Property-based tests (hypothesis) on core data structures & invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkParams, NicParams
from repro.hw.nic.frames import EtherType, Frame, MacAddress, frame_time_ns, wire_bytes
from repro.hw.nic.interrupts import InterruptCoalescer
from repro.oskernel import BufferPool
from repro.sim import Environment, Store

LINK = LinkParams()


# ---------------------------------------------------------------------------
# Ethernet framing
# ---------------------------------------------------------------------------
@given(nbytes=st.integers(min_value=0, max_value=9000))
def test_property_wire_bytes_bounds(nbytes):
    """Wire size is always >= the minimum frame + preamble + IFG and
    grows monotonically with payload."""
    f = Frame(src=MacAddress(1), dst=MacAddress(2), ethertype=EtherType.CLIC, payload_bytes=nbytes)
    wb = wire_bytes(f, LINK)
    assert wb >= LINK.preamble_bytes + LINK.min_frame_bytes + LINK.ifg_bytes
    assert wb >= nbytes  # overhead never negative
    if nbytes >= LINK.min_frame_bytes:
        f2 = Frame(src=MacAddress(1), dst=MacAddress(2), ethertype=0, payload_bytes=nbytes + 1)
        assert wire_bytes(f2, LINK) == wb + 1


@given(nbytes=st.integers(min_value=0, max_value=9000))
def test_property_frame_time_is_wire_bits_at_gigabit(nbytes):
    f = Frame(src=MacAddress(1), dst=MacAddress(2), ethertype=0, payload_bytes=nbytes)
    assert frame_time_ns(f, LINK) == pytest.approx(wire_bytes(f, LINK) * 8)


# ---------------------------------------------------------------------------
# BufferPool
# ---------------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(ops=st.lists(st.integers(min_value=-100, max_value=100), max_size=60))
def test_property_buffer_pool_accounting(ops):
    """Random take/give sequences: in_use stays within [0, capacity] and
    equals the sum of outstanding allocations."""
    env = Environment()
    pool = BufferPool(env, 100)
    outstanding = []
    for op in ops:
        if op > 0:
            if pool.try_take(op):
                outstanding.append(op)
        elif op < 0 and outstanding:
            amount = outstanding.pop()
            pool.give(amount)
        assert 0 <= pool.in_use <= pool.capacity
        assert pool.in_use == pytest.approx(sum(outstanding))


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=20))
def test_property_pool_blocking_takers_all_eventually_served(sizes):
    """Blocking takers + a releaser: everyone gets served, FIFO."""
    env = Environment()
    pool = BufferPool(env, 50)
    served = []

    def taker(env, idx, n):
        yield from pool.take(n)
        served.append(idx)
        yield env.timeout(10)
        pool.give(n)

    for idx, n in enumerate(sizes):
        env.process(taker(env, idx, n))
    env.run()
    assert served == list(range(len(sizes)))


# ---------------------------------------------------------------------------
# Store FIFO
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(items=st.lists(st.integers(), max_size=30))
def test_property_store_preserves_fifo(items):
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            got.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=5),
)
def test_property_bounded_store_never_overfills(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    max_seen = [0]

    def producer(env):
        for item in items:
            yield store.put(item)
            max_seen[0] = max(max_seen[0], len(store.items))

    def consumer(env):
        for _ in items:
            yield env.timeout(1)
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert max_seen[0] <= capacity


# ---------------------------------------------------------------------------
# Interrupt coalescer
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    gaps=st.lists(st.integers(min_value=0, max_value=50_000), min_size=1, max_size=40),
    threshold=st.integers(min_value=1, max_value=10),
)
def test_property_coalescer_no_frame_left_behind(gaps, threshold):
    """For any arrival pattern: every noted frame is eventually covered
    by an interrupt, and interrupts never exceed frames."""
    env = Environment()
    params = NicParams(coalesce_frames=threshold, coalesce_timeout_ns=10_000)
    fired = []

    coal = InterruptCoalescer(env, params, lambda: fired.append(env.now))
    serviced = [0]
    noted = [0]

    def servicer():
        # Emulate a driver that drains everything pending at IRQ time.
        def drain(env):
            yield env.timeout(100)
            serviced[0] = noted[0]
            coal.service_done(0)

        env.process(drain(env))

    coal.fire_cb = lambda: (fired.append(env.now), servicer())

    def arrivals(env):
        for gap in gaps:
            yield env.timeout(gap)
            noted[0] += 1
            coal.note_frame()

    env.process(arrivals(env))
    env.run()
    assert serviced[0] == len(gaps)  # nothing stranded
    assert len(fired) <= 2 * len(gaps)  # sanity: no interrupt storm


# ---------------------------------------------------------------------------
# Sweep-size grid
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    lo=st.integers(min_value=0, max_value=4),
    span=st.integers(min_value=0, max_value=4),
    ppd=st.integers(min_value=1, max_value=6),
)
def test_property_netpipe_sizes_sorted_unique_and_bounded(lo, span, ppd):
    from repro.workloads import netpipe_sizes

    sizes = netpipe_sizes(lo, lo + span, points_per_decade=ppd)
    assert sizes == sorted(set(sizes))
    assert sizes[0] == 10**lo
    assert sizes[-1] == 10 ** (lo + span)
