"""Tests for the deterministic fan-out engine (:mod:`repro.parallel`).

Workers must be module-level functions: with ``jobs > 1`` the pool
pickles them by reference into fresh interpreters.
"""

import os

import pytest

from repro.obs import aggregate_profiles
from repro.parallel import resolve_jobs, run_tasks, run_tasks_profiled
from repro.sim import Environment, Process, Timeout, profiled


def _square(n):
    return n * n


def _maybe_fail(n):
    if n == 3:
        raise ValueError(f"bad spec {n}")
    return n


def _sim_chain(n):
    """A tiny simulation — ``n`` timeouts; returns the final clock."""
    env = Environment()

    def chain():
        for _ in range(n):
            yield Timeout(env, 10)

    Process(env, chain())
    env.run()
    return env.now


def test_results_in_submission_order_parallel():
    specs = list(range(12))
    assert run_tasks(_square, specs, jobs=2) == [n * n for n in specs]


def test_serial_and_parallel_agree():
    specs = [5, 17, 40]
    assert run_tasks(_sim_chain, specs, jobs=1) == run_tasks(_sim_chain, specs, jobs=2)


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="bad spec 3"):
        run_tasks(_maybe_fail, [1, 2, 3, 4], jobs=1)
    with pytest.raises(ValueError, match="bad spec 3"):
        run_tasks(_maybe_fail, [1, 2, 3, 4], jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError, match="jobs must be"):
        resolve_jobs(-2)


def test_profile_sink_sees_worker_environments():
    """An ambient profiled() block aggregates identically at any jobs
    value: worker-side snapshots flow back into the parent's sink."""
    specs = [10, 20]
    with profiled() as serial_profs:
        run_tasks(_sim_chain, specs, jobs=1)
    with profiled() as parallel_profs:
        run_tasks(_sim_chain, specs, jobs=2)
    assert aggregate_profiles(serial_profs) == aggregate_profiles(parallel_profs)


def test_run_tasks_profiled_matches_serial():
    specs = [10, 20]
    serial = run_tasks_profiled(_sim_chain, specs, jobs=1)
    parallel = run_tasks_profiled(_sim_chain, specs, jobs=2)
    assert serial == parallel
    for _result, profile in parallel:
        assert profile["events_processed"] > 0


def _nested_fanout(n):
    """A task that itself fans out through a serial run_tasks — the
    battery shape: experiments sweep points with their own jobs knob."""
    return sum(run_tasks(_sim_chain, [n, n + 1], jobs=1))


def test_nested_run_tasks_under_pooled_profiling():
    """A pooled, profiled outer run_tasks over tasks that nest their own
    serial run_tasks: the inner call freezes its profilers to snapshot
    dicts, and the worker shim must pass those through instead of
    re-snapshotting (regression: AttributeError on the battery)."""
    specs = [10, 20]
    serial = run_tasks_profiled(_nested_fanout, specs, jobs=1)
    pooled = run_tasks_profiled(_nested_fanout, specs, jobs=2)
    assert serial == pooled
    for _result, profile in pooled:
        assert profile["events_processed"] > 0
