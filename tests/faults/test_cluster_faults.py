"""Cluster-level fault injection: the ISSUE's acceptance scenarios.

Covers the wiring from a :class:`FaultPlan` through links, switch and
NICs, the offered/delivered accounting split, and the two headline
resilience behaviours: a link outage *shorter* than the retry budget is
survived losslessly with RTO backoff, and one that *exceeds* the budget
kills the peer consistently for both the sender (``DeliveryFailed``) and
the aliveness machinery.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import LinkParams, granada2003
from repro.faults import FaultPlan, OutageWindow, SwitchBlackout
from repro.hw import Channel
from repro.hw.nic.frames import EtherType, Frame, MacAddress
from repro.protocols.clic import ClicControl
from repro.protocols.reliability import DeliveryFailed
from repro.workloads import clic_pair, pingpong, stream


def _cfg(**clic_overrides):
    cfg = granada2003(mtu=1500)
    if clic_overrides:
        node = replace(cfg.node, clic=replace(cfg.node.clic, **clic_overrides))
        cfg = cfg.with_node(node)
    return cfg


def _sum(cluster, suffix):
    return sum(
        inst.value
        for name, inst in cluster.metrics.items()
        if name.endswith(suffix)
    )


# -- offered vs delivered accounting (channel counter split) -----------------
def test_channel_offered_equals_delivered_plus_lost():
    from repro.sim import Environment

    env = Environment()
    chan = Channel(env, LinkParams(), loss_rate=0.3,
                   rng=np.random.default_rng(3))
    received = []
    chan.connect(received.append)

    def body():
        for _ in range(200):
            frame = Frame(src=MacAddress(1), dst=MacAddress(2),
                          ethertype=EtherType.CLIC, payload_bytes=1000)
            yield from chan.transmit(frame)

    env.run(env.process(body()))
    env.run()  # drain in-flight propagation
    c = chan.counters
    assert c.get("frames_offered") == 200
    assert c.get("frames") == len(received)
    assert c.get("frames_offered") == c.get("frames") + c.get("frames_lost")
    assert c.get("bytes_offered") == c.get("bytes") + c.get("bytes_lost")
    assert c.get("frames_lost") > 0  # the loss model did fire


# -- corruption is delivered, then dropped by the NIC CRC --------------------
def test_corruption_counted_as_nic_crc_drops():
    cluster = Cluster(_cfg(), faults=FaultPlan.corruption(0.05))
    res = stream(cluster, clic_pair(), 16_384, messages=24)
    assert res.nbytes_total == 16_384 * 24  # reliability hides the damage
    cluster.env.run()  # drain trailing (possibly corrupted) acks
    corrupted = _sum(cluster, ".corrupted")
    crc_drops = sum(
        nic.counters.get("rx_crc_drops")
        for node in cluster.nodes for nic in node.nics
    )
    assert corrupted > 0
    # Every corrupt frame dies at the receiving NIC's CRC check.  A frame
    # crossing two faulty channels (up-link, then switch, then down-link)
    # can draw corruption twice — two injection events, one CRC drop — so
    # drops may trail the event count by those rare double hits.
    double_hits = corrupted - crc_drops
    assert crc_drops > 0
    assert 0 <= double_hits <= 0.05 * corrupted + 2


# -- switch egress blackouts -------------------------------------------------
def test_switch_blackout_drops_frames_and_is_survived():
    plan = FaultPlan(switch_blackouts=(
        SwitchBlackout(window=OutageWindow(200_000.0, 2_200_000.0), node=1, channel=0),
    ))
    cluster = Cluster(_cfg(), faults=plan)
    res = stream(cluster, clic_pair(), 16_384, messages=16)
    assert res.nbytes_total == 16_384 * 16
    assert cluster.switch.counters.get("blackout_drops") > 0
    assert cluster.metrics.counter("faults.blackouts_started").value == 1


# -- link outage shorter than the retry budget -------------------------------
def test_outage_within_retry_budget_is_survived_losslessly():
    """A 10 ms dark link mid-pingpong: the sender must ride it out on
    RTO backoff and finish with nothing lost and the peer still alive.

    Budget: RTO floors at 5 ms and doubles per retry (3 s cap), so 16
    retries cover well over 10 ms of darkness.
    """
    plan = FaultPlan.link_outage(300_000.0, 10_300_000.0, node=0, channel=0)
    cluster = Cluster(_cfg(max_retries=16), faults=plan)
    res = pingpong(cluster, clic_pair(), 4096, repeats=6, warmup=1)
    assert res.rtt_ns > 0  # all 7 round trips completed

    module = cluster.nodes[0].clic
    assert not module.peer_is_dead(1)
    assert _sum(cluster, ".outage_drops") > 0  # the outage really bit
    assert _sum(cluster, ".timeouts") > 0      # ... and cost RTO stalls
    sender = module._senders[1]
    assert sender.rto is not None and sender.rto.samples > 0
    # Backoff was exercised during the stall and reset by recovery.
    assert sender.counters.get("timeouts") >= 1
    assert sender.rto.backoff == 1.0


def test_outage_exceeding_budget_kills_peer_consistently():
    """When the darkness outlives the retry budget the sender raises
    DeliveryFailed AND the aliveness verdict agrees the peer is down."""
    plan = FaultPlan.link_outage(300_000.0, 60_000_000_000.0, node=0, channel=0)
    cluster = Cluster(_cfg(), faults=plan)  # default budget ~8 s of backoff
    ctl = [ClicControl(node) for node in cluster.nodes]
    outcome = {}

    def tx(proc):
        try:
            # Larger than the sliding window, so the producer blocks on
            # window space and feels the retry exhaustion directly.
            yield from cluster.nodes[0].clic.send(1, port=5, nbytes=2_000_000)
            outcome["sent"] = True
        except DeliveryFailed as exc:
            outcome["error"] = str(exc)

    def probe(proc):
        yield cluster.env.timeout(20_000_000_000.0)  # well past exhaustion
        outcome["alive"] = yield from ctl[0].is_alive(1)

    cluster.nodes[0].spawn("tx").run(tx)
    done = cluster.nodes[0].spawn("probe").run(probe)
    cluster.env.run(done)

    assert "sent" not in outcome
    assert "retries" in outcome["error"]
    module = cluster.nodes[0].clic
    assert module.peer_is_dead(1)
    assert outcome["alive"] is False  # short-circuits on the shared verdict
    assert ctl[0].peer_down(1)
    assert _sum(cluster, ".peers_dead") == 1


def test_watch_declares_peer_dead_on_ping_loss():
    """The other road to the same verdict: consecutive lost aliveness
    probes, with no data traffic at all."""
    plan = FaultPlan.link_outage(1_000_000.0, 30_000_000_000.0, node=1, channel=0)
    cluster = Cluster(_cfg(), faults=plan)
    ctl = [ClicControl(node) for node in cluster.nodes]

    watcher = cluster.env.process(
        ctl[0].watch(1, interval_ns=50_000_000.0, timeout_ns=10_000_000.0,
                     loss_threshold=3)
    )
    cluster.env.run(watcher)
    assert cluster.nodes[0].clic.peer_is_dead(1)
    assert ctl[0].counters.get("watch_misses") >= 3
    with pytest.raises(DeliveryFailed):
        cluster.env.run(
            cluster.nodes[0].spawn("late").run(
                lambda proc: cluster.nodes[0].clic.send(1, port=1, nbytes=64)
            )
        )


def test_outage_spans_and_counters_emitted():
    plan = FaultPlan.link_outage(1_000.0, 2_000.0, node=0, channel=0)
    cluster = Cluster(_cfg(), faults=plan)
    cluster.env.run(until=5_000.0)
    assert cluster.metrics.counter("faults.outages_started").value == 2  # up + down
