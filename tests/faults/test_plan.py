"""Unit tests for the declarative fault-plan layer."""

import numpy as np
import pytest

from repro.faults import (
    BurstLoss,
    ChannelFaults,
    FaultPlan,
    FrameVerdict,
    GilbertElliottModel,
    LinkFaultSpec,
    OutageWindow,
    SwitchBlackout,
    flap_timeline,
)


# -- OutageWindow / flap_timeline -------------------------------------------
def test_outage_window_half_open():
    w = OutageWindow(100.0, 200.0)
    assert not w.covers(99.9)
    assert w.covers(100.0)
    assert w.covers(199.9)
    assert not w.covers(200.0)
    assert w.duration_ns == 100.0


def test_outage_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(-1.0, 10.0)
    with pytest.raises(ValueError):
        OutageWindow(10.0, 10.0)


def test_flap_timeline_periodic():
    windows = flap_timeline(first_down_ns=1_000.0, down_ns=100.0, up_ns=400.0, flaps=3)
    assert windows == (
        OutageWindow(1_000.0, 1_100.0),
        OutageWindow(1_500.0, 1_600.0),
        OutageWindow(2_000.0, 2_100.0),
    )
    with pytest.raises(ValueError):
        flap_timeline(0.0, 100.0, 100.0, flaps=0)
    with pytest.raises(ValueError):
        flap_timeline(0.0, 0.0, 100.0, flaps=1)


# -- BurstLoss ---------------------------------------------------------------
def test_burst_loss_from_average_hits_target_rate():
    for avg in (0.01, 0.05, 0.2):
        burst = BurstLoss.from_average(avg, mean_burst_frames=8.0, loss_bad=0.6)
        assert burst.average_loss_rate == pytest.approx(avg)
        assert 1.0 / burst.p_bad_to_good == pytest.approx(8.0)


def test_burst_loss_validation():
    with pytest.raises(ValueError):
        BurstLoss(p_good_to_bad=0.1, p_bad_to_good=0.0)
    with pytest.raises(ValueError):
        BurstLoss(p_good_to_bad=1.5, p_bad_to_good=0.1)
    with pytest.raises(ValueError):
        BurstLoss.from_average(0.7, loss_bad=0.6)  # average must stay below loss_bad


def test_gilbert_elliott_converges_to_average_rate():
    spec = BurstLoss.from_average(0.05, mean_burst_frames=8.0, loss_bad=1.0)
    model = GilbertElliottModel(spec)
    rng = np.random.default_rng(7)
    n = 200_000
    lost = sum(model.frame_lost(rng) for _ in range(n))
    assert lost / n == pytest.approx(0.05, rel=0.15)
    assert model.bursts > 100  # the loss really arrives in bursts


def test_gilbert_elliott_deterministic_per_seed():
    spec = BurstLoss.from_average(0.1, mean_burst_frames=4.0, loss_bad=1.0)
    runs = []
    for _ in range(2):
        model = GilbertElliottModel(spec)
        rng = np.random.default_rng(99)
        runs.append([model.frame_lost(rng) for _ in range(500)])
    assert runs[0] == runs[1]


# -- plan resolution ---------------------------------------------------------
def test_plan_link_overrides_default():
    special = LinkFaultSpec(loss_rate=0.5)
    plan = FaultPlan(
        default_link=LinkFaultSpec(loss_rate=0.01),
        links={(1, 0, "down"): special},
    )
    assert plan.link_spec(1, 0, "down") is special
    assert plan.link_spec(1, 0, "up").loss_rate == 0.01
    assert plan.link_spec(0, 0, "down").loss_rate == 0.01


def test_plan_rejects_bad_direction():
    with pytest.raises(ValueError):
        FaultPlan(links={(0, 0, "sideways"): LinkFaultSpec()})


def test_blackouts_for_matches_wildcards():
    w = OutageWindow(0.0, 10.0)
    plan = FaultPlan(switch_blackouts=(
        SwitchBlackout(window=w),                 # every port
        SwitchBlackout(window=OutageWindow(5.0, 6.0), node=1, channel=0),
    ))
    assert plan.blackouts_for(0, 0) == (w,)
    assert len(plan.blackouts_for(1, 0)) == 2


def test_link_outage_constructor_targets_both_directions():
    plan = FaultPlan.link_outage(10.0, 20.0, node=0, channel=0)
    assert plan.link_spec(0, 0, "up").outages == (OutageWindow(10.0, 20.0),)
    assert plan.link_spec(0, 0, "down").outages == (OutageWindow(10.0, 20.0),)
    assert not plan.link_spec(1, 0, "up").active


# -- ChannelFaults engine ----------------------------------------------------
def test_channel_faults_outage_beats_loss_model():
    spec = LinkFaultSpec(loss_rate=0.0, outages=(OutageWindow(100.0, 200.0),))
    eng = ChannelFaults(spec, rng=None)
    assert eng.judge(150.0) is FrameVerdict.OUTAGE
    assert eng.judge(250.0) is FrameVerdict.DELIVER
    assert eng.counters.get("outage_drops") == 1


def test_channel_faults_requires_rng_for_stochastic_models():
    with pytest.raises(ValueError):
        ChannelFaults(LinkFaultSpec(loss_rate=0.1), rng=None)


def test_channel_faults_corruption_verdict():
    eng = ChannelFaults(
        LinkFaultSpec(corrupt_rate=1.0), rng=np.random.default_rng(0)
    )
    assert eng.judge(0.0) is FrameVerdict.CORRUPT
    assert not FrameVerdict.CORRUPT.dropped  # delivered, then killed by CRC
    assert FrameVerdict.LOST.dropped and FrameVerdict.OUTAGE.dropped
    assert eng.counters.get("corrupted") == 1
