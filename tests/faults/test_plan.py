"""Unit tests for the declarative fault-plan layer."""

import numpy as np
import pytest

from repro.faults import (
    BurstLoss,
    ChannelFaults,
    CongestionWindow,
    DelayJitter,
    Duplication,
    FaultPlan,
    FrameVerdict,
    GilbertElliottModel,
    LinkFaultSpec,
    OutageWindow,
    SwitchBlackout,
    flap_timeline,
)


# -- OutageWindow / flap_timeline -------------------------------------------
def test_outage_window_half_open():
    w = OutageWindow(100.0, 200.0)
    assert not w.covers(99.9)
    assert w.covers(100.0)
    assert w.covers(199.9)
    assert not w.covers(200.0)
    assert w.duration_ns == 100.0


def test_outage_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(-1.0, 10.0)
    with pytest.raises(ValueError):
        OutageWindow(10.0, 10.0)


def test_flap_timeline_periodic():
    windows = flap_timeline(first_down_ns=1_000.0, down_ns=100.0, up_ns=400.0, flaps=3)
    assert windows == (
        OutageWindow(1_000.0, 1_100.0),
        OutageWindow(1_500.0, 1_600.0),
        OutageWindow(2_000.0, 2_100.0),
    )
    with pytest.raises(ValueError):
        flap_timeline(0.0, 100.0, 100.0, flaps=0)
    with pytest.raises(ValueError):
        flap_timeline(0.0, 0.0, 100.0, flaps=1)


# -- BurstLoss ---------------------------------------------------------------
def test_burst_loss_from_average_hits_target_rate():
    for avg in (0.01, 0.05, 0.2):
        burst = BurstLoss.from_average(avg, mean_burst_frames=8.0, loss_bad=0.6)
        assert burst.average_loss_rate == pytest.approx(avg)
        assert 1.0 / burst.p_bad_to_good == pytest.approx(8.0)


def test_burst_loss_validation():
    with pytest.raises(ValueError):
        BurstLoss(p_good_to_bad=0.1, p_bad_to_good=0.0)
    with pytest.raises(ValueError):
        BurstLoss(p_good_to_bad=1.5, p_bad_to_good=0.1)
    with pytest.raises(ValueError):
        BurstLoss.from_average(0.7, loss_bad=0.6)  # average must stay below loss_bad


def test_gilbert_elliott_converges_to_average_rate():
    spec = BurstLoss.from_average(0.05, mean_burst_frames=8.0, loss_bad=1.0)
    model = GilbertElliottModel(spec)
    rng = np.random.default_rng(7)
    n = 200_000
    lost = sum(model.frame_lost(rng) for _ in range(n))
    assert lost / n == pytest.approx(0.05, rel=0.15)
    assert model.bursts > 100  # the loss really arrives in bursts


def test_gilbert_elliott_deterministic_per_seed():
    spec = BurstLoss.from_average(0.1, mean_burst_frames=4.0, loss_bad=1.0)
    runs = []
    for _ in range(2):
        model = GilbertElliottModel(spec)
        rng = np.random.default_rng(99)
        runs.append([model.frame_lost(rng) for _ in range(500)])
    assert runs[0] == runs[1]


# -- plan resolution ---------------------------------------------------------
def test_plan_link_overrides_default():
    special = LinkFaultSpec(loss_rate=0.5)
    plan = FaultPlan(
        default_link=LinkFaultSpec(loss_rate=0.01),
        links={(1, 0, "down"): special},
    )
    assert plan.link_spec(1, 0, "down") is special
    assert plan.link_spec(1, 0, "up").loss_rate == 0.01
    assert plan.link_spec(0, 0, "down").loss_rate == 0.01


def test_plan_rejects_bad_direction():
    with pytest.raises(ValueError):
        FaultPlan(links={(0, 0, "sideways"): LinkFaultSpec()})


def test_blackouts_for_matches_wildcards():
    w = OutageWindow(0.0, 10.0)
    plan = FaultPlan(switch_blackouts=(
        SwitchBlackout(window=w),                 # every port
        SwitchBlackout(window=OutageWindow(5.0, 6.0), node=1, channel=0),
    ))
    assert plan.blackouts_for(0, 0) == (w,)
    assert len(plan.blackouts_for(1, 0)) == 2


def test_link_outage_constructor_targets_both_directions():
    plan = FaultPlan.link_outage(10.0, 20.0, node=0, channel=0)
    assert plan.link_spec(0, 0, "up").outages == (OutageWindow(10.0, 20.0),)
    assert plan.link_spec(0, 0, "down").outages == (OutageWindow(10.0, 20.0),)
    assert not plan.link_spec(1, 0, "up").active


# -- ChannelFaults engine ----------------------------------------------------
def test_channel_faults_outage_beats_loss_model():
    spec = LinkFaultSpec(loss_rate=0.0, outages=(OutageWindow(100.0, 200.0),))
    eng = ChannelFaults(spec, rng=None)
    assert eng.judge(150.0) is FrameVerdict.OUTAGE
    assert eng.judge(250.0) is FrameVerdict.DELIVER
    assert eng.counters.get("outage_drops") == 1


def test_channel_faults_requires_rng_for_stochastic_models():
    with pytest.raises(ValueError):
        ChannelFaults(LinkFaultSpec(loss_rate=0.1), rng=None)


def test_channel_faults_corruption_verdict():
    eng = ChannelFaults(
        LinkFaultSpec(corrupt_rate=1.0), rng=np.random.default_rng(0)
    )
    assert eng.judge(0.0) is FrameVerdict.CORRUPT
    assert not FrameVerdict.CORRUPT.dropped  # delivered, then killed by CRC
    assert FrameVerdict.LOST.dropped and FrameVerdict.OUTAGE.dropped
    assert eng.counters.get("corrupted") == 1


# -- adversarial-delivery spec validation ------------------------------------
def test_delay_jitter_validation():
    with pytest.raises(ValueError):
        DelayJitter(rate=1.5, max_delay_ns=100.0)
    with pytest.raises(ValueError):
        DelayJitter(rate=-0.1, max_delay_ns=100.0)
    with pytest.raises(ValueError):
        DelayJitter(rate=0.5, max_delay_ns=0.0)
    with pytest.raises(ValueError):
        DelayJitter(rate=0.5, max_delay_ns=-10.0)
    assert DelayJitter(rate=0.0, max_delay_ns=1.0).rate == 0.0  # bounds are legal


def test_duplication_validation():
    with pytest.raises(ValueError):
        Duplication(rate=2.0)
    with pytest.raises(ValueError):
        Duplication(rate=-0.5)
    with pytest.raises(ValueError):
        Duplication(rate=0.5, max_copies=0)
    assert Duplication(rate=1.0, max_copies=1).max_copies == 1


def test_congestion_window_validation():
    w = OutageWindow(0.0, 100.0)
    with pytest.raises(ValueError):
        CongestionWindow(window=w, bandwidth_factor=0.5)
    with pytest.raises(ValueError):
        CongestionWindow(window=w, extra_latency_ns=-1.0)
    with pytest.raises(ValueError):
        CongestionWindow(window=w)  # a no-op spike is a configuration bug
    ok = CongestionWindow(window=w, bandwidth_factor=4.0)
    assert ok.extra_latency_ns == 0.0


def test_switch_blackout_validation():
    with pytest.raises(ValueError):
        SwitchBlackout(window=OutageWindow(0.0, 1.0), node=-1)
    with pytest.raises(ValueError):
        SwitchBlackout(window=OutageWindow(0.0, 1.0), channel=-2)


def test_new_families_make_a_spec_active():
    assert not LinkFaultSpec().active
    assert LinkFaultSpec(jitter=DelayJitter(rate=0.1, max_delay_ns=1.0)).active
    assert LinkFaultSpec(duplicate=Duplication(rate=0.1)).active
    assert LinkFaultSpec(congestion=(
        CongestionWindow(window=OutageWindow(0.0, 1.0), bandwidth_factor=2.0),
    )).active


def test_adversarial_plan_constructors():
    reorder = FaultPlan.reordering(0.2, max_delay_ns=50_000.0)
    assert reorder.default_link.jitter == DelayJitter(rate=0.2, max_delay_ns=50_000.0)

    dup = FaultPlan.duplication(0.1, max_copies=3)
    assert dup.default_link.duplicate == Duplication(rate=0.1, max_copies=3)

    spike = FaultPlan.congestion_spike(1_000.0, 2_000.0, bandwidth_factor=8.0,
                                       extra_latency_ns=500.0)
    (cw,) = spike.default_link.congestion
    assert cw.window == OutageWindow(1_000.0, 2_000.0)
    assert cw.bandwidth_factor == 8.0 and cw.extra_latency_ns == 500.0

    with pytest.raises(ValueError):
        FaultPlan.reordering(0.2, max_delay_ns=0.0)
    with pytest.raises(ValueError):
        FaultPlan.duplication(1.2)
    with pytest.raises(ValueError):
        FaultPlan.congestion_spike(0.0, 1.0)  # neither knob engaged


# -- ChannelFaults.decide ----------------------------------------------------
def test_decide_draw_order_matches_judge_for_legacy_plans():
    """A loss-only plan must consume the exact same RNG sequence through
    decide() as through judge() — the bit-reproducibility contract."""
    spec = LinkFaultSpec(loss_rate=0.3, corrupt_rate=0.1)
    a = ChannelFaults(spec, rng=np.random.default_rng(42))
    b = ChannelFaults(spec, rng=np.random.default_rng(42))
    verdicts_judge = [a.judge(float(t)) for t in range(200)]
    decisions = [b.decide(float(t)) for t in range(200)]
    assert [d.verdict for d in decisions] == verdicts_judge
    assert all(d.copies == 1 and d.extra_delay_ns == 0.0 for d in decisions)


def test_decide_jitter_bounds_and_counter():
    spec = LinkFaultSpec(jitter=DelayJitter(rate=1.0, max_delay_ns=5_000.0))
    eng = ChannelFaults(spec, rng=np.random.default_rng(3))
    decisions = [eng.decide(float(t)) for t in range(100)]
    assert all(0.0 <= d.extra_delay_ns < 5_000.0 for d in decisions)
    assert any(d.extra_delay_ns > 0.0 for d in decisions)
    assert eng.counters.get("jittered") == 100


def test_decide_duplication_copy_bounds():
    spec = LinkFaultSpec(duplicate=Duplication(rate=1.0, max_copies=3))
    eng = ChannelFaults(spec, rng=np.random.default_rng(5))
    copies = [eng.decide(float(t)).copies for t in range(200)]
    assert set(copies) <= {2, 3, 4}  # 1 original + [1, max_copies] extras
    assert len(set(copies)) > 1
    assert eng.counters.get("duplicated") == 200
    assert eng.counters.get("dup_copies") == sum(c - 1 for c in copies)


def test_decide_dropped_frames_never_draw_for_jitter_or_duplication():
    """Loss draws happen first; jitter/dup draw only for delivered frames,
    so two engines differing only in delivery fate stay draw-aligned."""
    spec = LinkFaultSpec(
        loss_rate=1.0,
        jitter=DelayJitter(rate=1.0, max_delay_ns=100.0),
        duplicate=Duplication(rate=1.0),
    )
    eng = ChannelFaults(spec, rng=np.random.default_rng(1))
    d = eng.decide(0.0)
    assert d.dropped and d.copies == 1 and d.extra_delay_ns == 0.0
    assert eng.counters.get("jittered") == 0
    assert eng.counters.get("duplicated") == 0


def test_congestion_is_deterministic_and_zero_draw():
    w1 = CongestionWindow(window=OutageWindow(100.0, 300.0), bandwidth_factor=4.0,
                          extra_latency_ns=1_000.0)
    w2 = CongestionWindow(window=OutageWindow(200.0, 400.0), bandwidth_factor=2.0,
                          extra_latency_ns=500.0)
    eng = ChannelFaults(LinkFaultSpec(congestion=(w1, w2)), rng=None)  # no RNG needed
    assert eng.congestion_factor(50.0) == 1.0
    assert eng.congestion_factor(150.0) == 4.0
    assert eng.congestion_factor(250.0) == 8.0  # overlap compounds
    assert eng.congestion_latency_ns(250.0) == 1_500.0  # overlap sums
    assert eng.congestion_factor(350.0) == 2.0
    d = eng.decide(250.0)
    assert d.congested and d.verdict is FrameVerdict.DELIVER
    assert eng.counters.get("congested") == 1
