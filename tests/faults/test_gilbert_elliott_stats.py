"""Statistical checks on the Gilbert–Elliott burst-loss model.

Over a long fixed-seed frame sequence the empirical loss rate must
match :attr:`BurstLoss.average_loss_rate` (the analytic stationary
rate) within tolerance, bursts must actually cluster losses, and
identical seeds must produce identical loss sequences — the property
the whole replay subsystem leans on.
"""

import numpy as np
import pytest

from repro.faults import BurstLoss
from repro.faults.inject import GilbertElliottModel

FRAMES = 40_000


def _loss_sequence(spec: BurstLoss, seed: int, frames: int = FRAMES):
    model = GilbertElliottModel(spec)
    rng = np.random.default_rng(seed)
    return model, [model.frame_lost(rng) for _ in range(frames)]


@pytest.mark.parametrize("seed", [3, 11, 2003])
@pytest.mark.parametrize(
    "spec",
    [
        BurstLoss(p_good_to_bad=0.01, p_bad_to_good=0.125),
        BurstLoss(p_good_to_bad=0.02, p_bad_to_good=0.25, loss_bad=0.6),
        BurstLoss.from_average(0.03, mean_burst_frames=8.0),
    ],
    ids=["hard-bursts", "soft-bursts", "from-average"],
)
def test_empirical_rate_matches_analytic_stationary_rate(spec, seed):
    model, losses = _loss_sequence(spec, seed)
    empirical = sum(losses) / len(losses)
    analytic = spec.average_loss_rate
    # Burst losses are highly correlated, so the variance of the
    # empirical mean is much larger than the i.i.d. binomial bound —
    # allow 30% relative slack plus an absolute floor.
    assert empirical == pytest.approx(analytic, rel=0.30, abs=0.01)
    assert model.bursts > 0  # the chain actually visited the bad state


def test_losses_actually_cluster():
    """The point of Gilbert–Elliott: at the same average rate, losses
    arrive in runs.  Compare mean run length against a uniform channel."""
    spec = BurstLoss.from_average(0.05, mean_burst_frames=8.0)
    _, losses = _loss_sequence(spec, seed=7)

    def mean_run(seq):
        runs, current = [], 0
        for lost in seq:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return sum(runs) / len(runs) if runs else 0.0

    uniform = np.random.default_rng(7).random(FRAMES) < 0.05
    assert mean_run(losses) > 2.0 * mean_run(list(uniform))


@pytest.mark.parametrize("seed", [0, 5, 42])
def test_identical_seeds_identical_sequences(seed):
    spec = BurstLoss(p_good_to_bad=0.02, p_bad_to_good=0.2, loss_bad=0.8)
    model_a, a = _loss_sequence(spec, seed, frames=5_000)
    model_b, b = _loss_sequence(spec, seed, frames=5_000)
    assert a == b
    assert model_a.bursts == model_b.bursts


def test_different_seeds_differ():
    spec = BurstLoss(p_good_to_bad=0.02, p_bad_to_good=0.2)
    _, a = _loss_sequence(spec, seed=1, frames=5_000)
    _, b = _loss_sequence(spec, seed=2, frames=5_000)
    assert a != b
